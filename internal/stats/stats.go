// Package stats provides the statistical primitives used throughout the
// analysis: empirical CDFs, two-sample Kolmogorov-Smirnov tests (used in the
// influence comparisons of Figures 13-16), Fleiss' kappa (Appendix B), and
// descriptive statistics.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned when a computation requires at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (0 for fewer than one
// observation).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs. It returns 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Describe computes descriptive statistics of xs.
func Describe(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    xs[0],
		Max:    xs[0],
	}
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s, nil
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f sd=%.3f min=%.3f max=%.3f",
		s.N, s.Mean, s.Median, s.StdDev, s.Min, s.Max)
}

// CDF is an empirical cumulative distribution function over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from the sample xs.
func NewCDF(xs []float64) (*CDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}, nil
}

// At returns the empirical CDF evaluated at x: the fraction of observations
// less than or equal to x.
func (c *CDF) At(x float64) float64 {
	// Index of the first element > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Len returns the number of observations.
func (c *CDF) Len() int { return len(c.sorted) }

// Quantile returns the q-th quantile of the underlying sample.
func (c *CDF) Quantile(q float64) float64 { return Quantile(c.sorted, q) }

// Points returns (x, F(x)) pairs suitable for plotting: one point per
// distinct observation.
func (c *CDF) Points() ([]float64, []float64) {
	var xs, ys []float64
	n := float64(len(c.sorted))
	for i := 0; i < len(c.sorted); i++ {
		if i+1 < len(c.sorted) && c.sorted[i+1] == c.sorted[i] {
			continue
		}
		xs = append(xs, c.sorted[i])
		ys = append(ys, float64(i+1)/n)
	}
	return xs, ys
}

// KSResult is the result of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	// Statistic is the maximum absolute difference between the two empirical
	// CDFs.
	Statistic float64
	// PValue is the asymptotic two-sided p-value.
	PValue float64
	// Significant reports whether PValue < 0.01, the threshold used in the
	// paper's influence comparisons.
	Significant bool
}

// KSTest performs a two-sample Kolmogorov-Smirnov test comparing samples a
// and b, using the asymptotic Kolmogorov distribution for the p-value.
func KSTest(a, b []float64) (KSResult, error) {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{}, ErrEmpty
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	d := 0.0
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		va, vb := as[i], bs[j]
		if va <= vb {
			i++
		}
		if vb <= va {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	en := math.Sqrt(na * nb / (na + nb))
	p := kolmogorovQ((en + 0.12 + 0.11/en) * d)
	return KSResult{Statistic: d, PValue: p, Significant: p < 0.01}, nil
}

// kolmogorovQ computes the complementary Kolmogorov distribution
// Q(lambda) = 2 * sum_{k>=1} (-1)^(k-1) exp(-2 k^2 lambda^2).
func kolmogorovQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	q := 2 * sum
	if q < 0 {
		return 0
	}
	if q > 1 {
		return 1
	}
	return q
}

// FleissKappa computes Fleiss' kappa for inter-rater agreement. ratings is a
// matrix with one row per subject and one column per category; entry (i, c)
// is the number of raters who assigned subject i to category c. Every row
// must sum to the same number of raters (>= 2).
func FleissKappa(ratings [][]int) (float64, error) {
	if len(ratings) == 0 {
		return 0, ErrEmpty
	}
	nCat := len(ratings[0])
	if nCat == 0 {
		return 0, errors.New("stats: fleiss kappa requires at least one category")
	}
	raters := 0
	for _, c := range ratings[0] {
		raters += c
	}
	if raters < 2 {
		return 0, errors.New("stats: fleiss kappa requires at least two raters")
	}
	nSub := float64(len(ratings))

	// Category proportions.
	pj := make([]float64, nCat)
	for _, row := range ratings {
		if len(row) != nCat {
			return 0, errors.New("stats: ragged ratings matrix")
		}
		sum := 0
		for c, v := range row {
			if v < 0 {
				return 0, errors.New("stats: negative rating count")
			}
			pj[c] += float64(v)
			sum += v
		}
		if sum != raters {
			return 0, fmt.Errorf("stats: inconsistent rater count: row has %d, expected %d", sum, raters)
		}
	}
	total := nSub * float64(raters)
	for c := range pj {
		pj[c] /= total
	}

	// Per-subject agreement.
	pBar := 0.0
	for _, row := range ratings {
		pi := 0.0
		for _, v := range row {
			pi += float64(v * (v - 1))
		}
		pi /= float64(raters * (raters - 1))
		pBar += pi
	}
	pBar /= nSub

	peBar := 0.0
	for _, p := range pj {
		peBar += p * p
	}
	if 1-peBar == 0 {
		// Degenerate case: all ratings in one category; agreement is perfect.
		return 1, nil
	}
	return (pBar - peBar) / (1 - peBar), nil
}

// Jaccard returns the Jaccard index |A ∩ B| / |A ∪ B| between two sets of
// strings. Two empty sets have similarity 1 by convention (they are
// identical); one empty and one non-empty set have similarity 0.
func Jaccard(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	setA := make(map[string]struct{}, len(a))
	for _, s := range a {
		setA[s] = struct{}{}
	}
	setB := make(map[string]struct{}, len(b))
	for _, s := range b {
		setB[s] = struct{}{}
	}
	inter := 0
	for s := range setA {
		if _, ok := setB[s]; ok {
			inter++
		}
	}
	union := len(setA) + len(setB) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// Histogram bins the sample xs into nBins equal-width bins spanning
// [min, max] and returns the bin edges (nBins+1 values) and counts.
func Histogram(xs []float64, nBins int) (edges []float64, counts []int, err error) {
	if len(xs) == 0 {
		return nil, nil, ErrEmpty
	}
	if nBins < 1 {
		return nil, nil, errors.New("stats: histogram requires at least one bin")
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if min == max {
		max = min + 1
	}
	width := (max - min) / float64(nBins)
	edges = make([]float64, nBins+1)
	for i := range edges {
		edges[i] = min + float64(i)*width
	}
	counts = make([]int, nBins)
	for _, x := range xs {
		bin := int((x - min) / width)
		if bin >= nBins {
			bin = nBins - 1
		}
		if bin < 0 {
			bin = 0
		}
		counts[bin]++
	}
	return edges, counts, nil
}

// PearsonCorrelation returns the Pearson correlation coefficient of two
// equal-length samples.
func PearsonCorrelation(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, errors.New("stats: correlation requires equal-length non-empty samples")
	}
	mx, my := Mean(xs), Mean(ys)
	var num, dx, dy float64
	for i := range xs {
		a := xs[i] - mx
		b := ys[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	den := math.Sqrt(dx * dy)
	if den == 0 {
		return 0, errors.New("stats: zero variance sample")
	}
	return num / den, nil
}
