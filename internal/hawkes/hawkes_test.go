package hawkes

import (
	"math"
	"math/rand"
	"testing"
)

// twoProcessModel builds a small stable two-process model with asymmetric
// cross-excitation: process 0 strongly excites process 1, but not vice
// versa.
func twoProcessModel() *Model {
	m := NewModel(2, 1.0)
	m.Mu[0] = 0.4
	m.Mu[1] = 0.2
	m.W[0][0] = 0.2
	m.W[0][1] = 0.4
	m.W[1][0] = 0.02
	m.W[1][1] = 0.1
	return m
}

func TestModelValidate(t *testing.T) {
	if err := twoProcessModel().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := NewModel(2, 1.0)
	bad.Mu[0] = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative mu should be rejected")
	}
	bad2 := NewModel(2, 0)
	if err := bad2.Validate(); err == nil {
		t.Fatal("zero omega should be rejected")
	}
	bad3 := NewModel(2, 1)
	bad3.W[0][1] = math.NaN()
	if err := bad3.Validate(); err == nil {
		t.Fatal("NaN weight should be rejected")
	}
	bad4 := &Model{K: 0}
	if err := bad4.Validate(); err == nil {
		t.Fatal("zero processes should be rejected")
	}
	bad5 := NewModel(2, 1)
	bad5.W[1] = []float64{0.1}
	if err := bad5.Validate(); err == nil {
		t.Fatal("ragged W should be rejected")
	}
}

func TestSpectralRadiusBound(t *testing.T) {
	m := twoProcessModel()
	if got := m.SpectralRadiusBound(); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("bound = %v, want 0.6", got)
	}
}

func TestSortEventsAndCounts(t *testing.T) {
	events := []Event{{Time: 3, Process: 1}, {Time: 1, Process: 0}, {Time: 2, Process: 1}}
	if err := SortEvents(events, 2); err != nil {
		t.Fatal(err)
	}
	if events[0].Time != 1 || events[2].Time != 3 {
		t.Fatalf("events not sorted: %+v", events)
	}
	counts := CountByProcess(events, 2)
	if counts[0] != 1 || counts[1] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	if err := SortEvents([]Event{{Time: 1, Process: 5}}, 2); err == nil {
		t.Fatal("out-of-range process should be rejected")
	}
	if err := SortEvents([]Event{{Time: math.NaN(), Process: 0}}, 2); err == nil {
		t.Fatal("NaN time should be rejected")
	}
}

func TestIntensity(t *testing.T) {
	m := twoProcessModel()
	history := []Event{{Time: 1, Process: 0}}
	// Just after the event, intensity of process 1 is elevated above its
	// background by ~W[0][1]*Omega.
	lam := m.Intensity(1, 1.001, history)
	if lam <= m.Mu[1] {
		t.Fatalf("intensity %v should exceed background %v", lam, m.Mu[1])
	}
	// Long after the event, it has relaxed back to the background.
	lamLate := m.Intensity(1, 50, history)
	if math.Abs(lamLate-m.Mu[1]) > 1e-6 {
		t.Fatalf("intensity should relax to background, got %v", lamLate)
	}
	// Events at or after t do not contribute.
	lamBefore := m.Intensity(1, 1.0, history)
	if math.Abs(lamBefore-m.Mu[1]) > 1e-12 {
		t.Fatalf("event at t should not contribute, got %v", lamBefore)
	}
}

func TestSimulateBasicProperties(t *testing.T) {
	m := twoProcessModel()
	rng := rand.New(rand.NewSource(1))
	events, err := m.Simulate(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("expected events")
	}
	prev := -1.0
	for _, e := range events {
		if e.Time < prev {
			t.Fatal("events not sorted by time")
		}
		prev = e.Time
		if e.Time < 0 || e.Time >= 500 {
			t.Fatalf("event time %v outside horizon", e.Time)
		}
		if e.Process < 0 || e.Process >= 2 {
			t.Fatalf("invalid process %d", e.Process)
		}
	}
	// Expected count: total rate = mu_total / (1 - branching). Rough check
	// that we are within a factor of two of the analytic expectation.
	counts := CountByProcess(events, 2)
	total := counts[0] + counts[1]
	if total < 200 || total > 2000 {
		t.Fatalf("implausible event count %d", total)
	}
}

func TestSimulateErrors(t *testing.T) {
	m := twoProcessModel()
	rng := rand.New(rand.NewSource(1))
	if _, err := m.Simulate(rng, -5); err == nil {
		t.Fatal("negative horizon should fail")
	}
	super := NewModel(1, 1)
	super.Mu[0] = 1
	super.W[0][0] = 1.5
	if _, err := super.Simulate(rng, 10); err == nil {
		t.Fatal("supercritical model should fail")
	}
	invalid := NewModel(1, 0)
	if _, err := invalid.Simulate(rng, 10); err == nil {
		t.Fatal("invalid model should fail")
	}
}

func TestSimulateWithGroundTruthRootsValid(t *testing.T) {
	m := twoProcessModel()
	rng := rand.New(rand.NewSource(2))
	events, roots, err := m.SimulateWithGroundTruth(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(roots) {
		t.Fatalf("events/roots length mismatch: %d vs %d", len(events), len(roots))
	}
	prev := -1.0
	for i, e := range events {
		if e.Time < prev {
			t.Fatal("events not sorted")
		}
		prev = e.Time
		if roots[i] < 0 || roots[i] >= 2 {
			t.Fatalf("invalid root %d", roots[i])
		}
	}
	// With W[0][1] >> W[1][0], a sizeable share of process-1 events should be
	// rooted in process 0, and almost no process-0 events rooted in 1.
	rootedInOther := 0
	proc1 := 0
	for i, e := range events {
		if e.Process == 1 {
			proc1++
			if roots[i] == 0 {
				rootedInOther++
			}
		}
	}
	if proc1 == 0 {
		t.Fatal("no process-1 events")
	}
	if float64(rootedInOther)/float64(proc1) < 0.1 {
		t.Fatalf("expected a sizeable fraction of process-1 events rooted in 0, got %d/%d", rootedInOther, proc1)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []float64{0, 0.5, 3, 50} {
		sum := 0
		const n = 3000
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.15*mean+0.05 {
			t.Errorf("poisson mean %v: sample mean %v", mean, got)
		}
	}
}

func TestFitConfigValidate(t *testing.T) {
	if err := DefaultFitConfig(5, 100).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []FitConfig{
		{K: 0, Horizon: 10, Omega: 1, MaxIter: 10},
		{K: 2, Horizon: 0, Omega: 1, MaxIter: 10},
		{K: 2, Horizon: 10, Omega: 0, MaxIter: 10},
		{K: 2, Horizon: 10, Omega: 1, MaxIter: 0},
		{K: 2, Horizon: 10, Omega: 1, MaxIter: 10, Tolerance: -1},
		{K: 2, Horizon: 10, Omega: 1, MaxIter: 10, MuPrior: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", cfg)
		}
	}
}

func TestFitEmptyEvents(t *testing.T) {
	res, err := Fit(nil, DefaultFitConfig(3, 100))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || len(res.Events) != 0 {
		t.Fatalf("unexpected result for empty events: %+v", res)
	}
}

func TestFitRejectsOutOfWindowEvents(t *testing.T) {
	cfg := DefaultFitConfig(2, 10)
	if _, err := Fit([]Event{{Time: 11, Process: 0}}, cfg); err == nil {
		t.Fatal("event beyond horizon should be rejected")
	}
	if _, err := Fit([]Event{{Time: -1, Process: 0}}, cfg); err == nil {
		t.Fatal("negative event time should be rejected")
	}
	if _, err := Fit([]Event{{Time: 1, Process: 7}}, cfg); err == nil {
		t.Fatal("out-of-range process should be rejected")
	}
}

func TestFitRecoversGroundTruth(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(7))
	const horizon = 4000.0
	events, err := truth.Simulate(rng, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFitConfig(2, horizon)
	cfg.Omega = truth.Omega
	res, err := Fit(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	// Background rates within 30% relative error.
	for p := 0; p < 2; p++ {
		if rel := math.Abs(m.Mu[p]-truth.Mu[p]) / truth.Mu[p]; rel > 0.3 {
			t.Errorf("Mu[%d] = %v, want ~%v", p, m.Mu[p], truth.Mu[p])
		}
	}
	// The dominant cross weight W[0][1] must be recovered clearly above the
	// negligible reverse weight W[1][0].
	if m.W[0][1] < 0.2 {
		t.Errorf("W[0][1] = %v, want near 0.4", m.W[0][1])
	}
	if m.W[1][0] > 0.15 {
		t.Errorf("W[1][0] = %v, want near 0.02", m.W[1][0])
	}
	if m.W[0][1] <= m.W[1][0] {
		t.Errorf("asymmetry not recovered: W[0][1]=%v W[1][0]=%v", m.W[0][1], m.W[1][0])
	}
	if res.Iterations == 0 {
		t.Error("no iterations performed")
	}
}

func TestFitResponsibilitiesNormalized(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(9))
	events, err := truth.Simulate(rng, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(events, DefaultFitConfig(2, 300))
	if err != nil {
		t.Fatal(err)
	}
	for j := range res.Events {
		sum := res.BackgroundResponsibility[j]
		for a := 0; a < 2; a++ {
			sum += res.SourceResponsibility[j][a]
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("responsibilities of event %d sum to %v", j, sum)
		}
	}
}

func TestFitImprovesLikelihoodOverInitialModel(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(11))
	const horizon = 1000.0
	events, err := truth.Simulate(rng, horizon)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(events, DefaultFitConfig(2, horizon))
	if err != nil {
		t.Fatal(err)
	}
	// The fitted likelihood should not be far below the truth's likelihood.
	llFit := LogLikelihood(res.Model, res.Events, horizon)
	llTruth := LogLikelihood(truth, res.Events, horizon)
	if llFit < llTruth-0.05*math.Abs(llTruth) {
		t.Fatalf("fitted log likelihood %v much worse than truth %v", llFit, llTruth)
	}
}

func TestAttributeRowsSumToOne(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(13))
	events, err := truth.Simulate(rng, 500)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(events, DefaultFitConfig(2, 500))
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.RootCause) != len(res.Events) {
		t.Fatal("attribution length mismatch")
	}
	for j, row := range att.RootCause {
		sum := 0.0
		for _, v := range row {
			if v < -1e-12 {
				t.Fatalf("negative root-cause probability at event %d", j)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("root-cause row %d sums to %v", j, sum)
		}
	}
}

func TestAttributeErrors(t *testing.T) {
	if _, err := Attribute(nil); err == nil {
		t.Fatal("nil fit should be rejected")
	}
	broken := &FitResult{Model: NewModel(2, 1), Events: []Event{{Time: 1, Process: 0}}}
	if _, err := Attribute(broken); err == nil {
		t.Fatal("missing responsibilities should be rejected")
	}
}

func TestAttributeRecoversAsymmetricInfluence(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(17))
	const horizon = 3000.0
	events, gtRoots, err := truth.SimulateWithGroundTruth(rng, horizon)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFitConfig(2, horizon)
	res, err := Fit(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(res)
	if err != nil {
		t.Fatal(err)
	}
	raw := att.InfluenceMatrix()
	// Influence of 0 on 1 should clearly exceed influence of 1 on 0,
	// mirroring the ground-truth asymmetry.
	if raw[0][1] <= raw[1][0] {
		t.Fatalf("asymmetry not recovered: raw[0][1]=%v raw[1][0]=%v", raw[0][1], raw[1][0])
	}
	// Compare against the ground-truth fraction of process-1 events rooted
	// in process 0.
	proc1 := 0
	rooted0 := 0
	for i, e := range events {
		if e.Process == 1 {
			proc1++
			if gtRoots[i] == 0 {
				rooted0++
			}
		}
	}
	gtFrac := float64(rooted0) / float64(proc1)
	if math.Abs(raw[0][1]-gtFrac) > 0.15 {
		t.Fatalf("estimated influence %v far from ground truth %v", raw[0][1], gtFrac)
	}
	// Columns of the raw influence matrix sum to ~1 (every destination event
	// has a root cause somewhere).
	for dst := 0; dst < 2; dst++ {
		col := raw[0][dst] + raw[1][dst]
		if math.Abs(col-1) > 1e-6 {
			t.Fatalf("raw influence column %d sums to %v", dst, col)
		}
	}
}

func TestNormalizedInfluenceAndTotals(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(19))
	events, err := truth.Simulate(rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fit(events, DefaultFitConfig(2, 1000))
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(res)
	if err != nil {
		t.Fatal(err)
	}
	norm := att.NormalizedInfluenceMatrix()
	counts := CountByProcess(res.Events, 2)
	raw := att.InfluenceMatrix()
	// Cross-check: norm[src][dst] * count[src] == raw[src][dst] * count[dst].
	for s := 0; s < 2; s++ {
		for d := 0; d < 2; d++ {
			lhs := norm[s][d] * float64(counts[s])
			rhs := raw[s][d] * float64(counts[d])
			if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(lhs)) {
				t.Fatalf("normalization inconsistent at (%d,%d): %v vs %v", s, d, lhs, rhs)
			}
		}
	}
	ext := att.ExternalInfluence()
	tot := att.TotalInfluence()
	for s := 0; s < 2; s++ {
		if ext[s] < 0 || tot[s] < ext[s] {
			t.Fatalf("total/external influence inconsistent for %d: %v vs %v", s, tot[s], ext[s])
		}
		if math.Abs(tot[s]-(ext[s]+norm[s][s])) > 1e-9 {
			t.Fatalf("total != external + self for %d", s)
		}
	}
	share := att.RootCauseShare()
	sum := 0.0
	for _, v := range share {
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("root cause shares sum to %v", sum)
	}
}

func TestAttributionToyThreeProcesses(t *testing.T) {
	// Figure 10's toy: three processes where B excites A and C. Build a tiny
	// deterministic scenario and check that the attribution puts most of the
	// root cause of the induced events on B.
	m := NewModel(3, 1.0)
	m.Mu[0], m.Mu[1], m.Mu[2] = 0.01, 0.5, 0.01
	m.W[1][0] = 0.45
	m.W[1][2] = 0.45
	rng := rand.New(rand.NewSource(23))
	events, err := m.Simulate(rng, 800)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultFitConfig(3, 800)
	res, err := Fit(events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(res)
	if err != nil {
		t.Fatal(err)
	}
	raw := att.InfluenceMatrix()
	// B (process 1) should be the dominant external root cause for A and C.
	if raw[1][0] < raw[0][0]*0.2 && raw[1][0] < 0.3 {
		t.Errorf("B's influence on A too low: %v", raw[1][0])
	}
	if raw[1][2] < 0.3 {
		t.Errorf("B's influence on C too low: %v", raw[1][2])
	}
	// A and C barely influence each other.
	if raw[0][2] > raw[1][2] || raw[2][0] > raw[1][0] {
		t.Errorf("spurious influence between A and C: %v %v", raw[0][2], raw[2][0])
	}
}

func TestAttributeEmptyFit(t *testing.T) {
	res, err := Fit(nil, DefaultFitConfig(2, 10))
	if err != nil {
		t.Fatal(err)
	}
	att, err := Attribute(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(att.RootCause) != 0 {
		t.Fatal("empty fit should give empty attribution")
	}
	share := att.RootCauseShare()
	for _, v := range share {
		if v != 0 {
			t.Fatal("empty attribution share should be zero")
		}
	}
}

func TestLogLikelihoodPrefersTrueModel(t *testing.T) {
	truth := twoProcessModel()
	rng := rand.New(rand.NewSource(29))
	events, err := truth.Simulate(rng, 2000)
	if err != nil {
		t.Fatal(err)
	}
	// A clearly wrong model: everything is background noise at the wrong rate.
	wrong := NewModel(2, 1.0)
	wrong.Mu[0], wrong.Mu[1] = 5.0, 5.0
	llTruth := LogLikelihood(truth, events, 2000)
	llWrong := LogLikelihood(wrong, events, 2000)
	if llTruth <= llWrong {
		t.Fatalf("true model should have higher likelihood: %v vs %v", llTruth, llWrong)
	}
}
