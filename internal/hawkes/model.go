// Package hawkes implements multivariate Hawkes point processes with
// exponential excitation kernels: simulation, maximum-a-posteriori fitting
// via expectation-maximisation, and the root-cause attribution method the
// paper uses to estimate how much each Web community influences meme
// dissemination on the others (Section 5).
//
// The paper fits its models with the Gibbs sampler of Linderman & Adams;
// this package uses an EM algorithm over the same latent branching
// structure, which produces consistent estimates of the background rates and
// the community-to-community weight matrix — the quantities the influence
// matrices (Figures 11-16) are computed from. Ground-truth recovery is
// exercised in the package tests.
package hawkes

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Event is a single point of a multivariate Hawkes process: an occurrence on
// one of the K processes at a given time. In the paper an event is a meme
// image posted on one of the five Web communities.
type Event struct {
	// Time is the event time, in arbitrary but consistent units (the paper
	// uses hours since the start of the observation window).
	Time float64
	// Process is the index of the process (community) the event occurred on,
	// in [0, K).
	Process int
}

// Model is a multivariate Hawkes process with exponential kernels. The
// conditional intensity of process k at time t is
//
//	lambda_k(t) = Mu[k] + sum over events (t_i, c_i) with t_i < t of
//	              W[c_i][k] * Omega * exp(-Omega * (t - t_i))
//
// so W[a][b] is the expected number of additional events on process b caused
// (directly) by one event on process a, and 1/Omega is the mean delay of
// those induced events.
type Model struct {
	// K is the number of processes.
	K int
	// Mu holds the background (exogenous) rate of each process.
	Mu []float64
	// W is the K x K excitation weight matrix; W[a][b] is the expected number
	// of direct offspring on process b per event on process a.
	W [][]float64
	// Omega is the decay rate of the exponential kernel.
	Omega float64
}

// NewModel allocates a zero-valued model with K processes.
func NewModel(k int, omega float64) *Model {
	m := &Model{K: k, Mu: make([]float64, k), W: make([][]float64, k), Omega: omega}
	for i := range m.W {
		m.W[i] = make([]float64, k)
	}
	return m
}

// Validate reports whether the model's parameters are structurally sound.
func (m *Model) Validate() error {
	if m.K <= 0 {
		return errors.New("hawkes: model needs at least one process")
	}
	if len(m.Mu) != m.K || len(m.W) != m.K {
		return fmt.Errorf("hawkes: parameter shapes do not match K=%d", m.K)
	}
	if m.Omega <= 0 {
		return errors.New("hawkes: omega must be positive")
	}
	for i, row := range m.W {
		if len(row) != m.K {
			return fmt.Errorf("hawkes: W row %d has length %d, want %d", i, len(row), m.K)
		}
		for j, w := range row {
			if w < 0 || math.IsNaN(w) {
				return fmt.Errorf("hawkes: W[%d][%d] = %v is invalid", i, j, w)
			}
		}
	}
	for i, mu := range m.Mu {
		if mu < 0 || math.IsNaN(mu) {
			return fmt.Errorf("hawkes: Mu[%d] = %v is invalid", i, mu)
		}
	}
	return nil
}

// SpectralRadiusBound returns an upper bound on the branching ratio: the
// maximum row sum of W. A value below 1 guarantees the process is stable
// (subcritical) and simulations terminate.
func (m *Model) SpectralRadiusBound() float64 {
	max := 0.0
	for _, row := range m.W {
		sum := 0.0
		for _, w := range row {
			sum += w
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// Intensity evaluates the conditional intensity of process k at time t given
// the (time-sorted) history of events strictly before t.
func (m *Model) Intensity(k int, t float64, history []Event) float64 {
	lambda := m.Mu[k]
	for _, e := range history {
		if e.Time >= t {
			break
		}
		lambda += m.W[e.Process][k] * m.Omega * math.Exp(-m.Omega*(t-e.Time))
	}
	return lambda
}

// SortEvents sorts events by time (stable on ties) in place and validates
// process indexes against K.
func SortEvents(events []Event, k int) error {
	for i, e := range events {
		if e.Process < 0 || e.Process >= k {
			return fmt.Errorf("hawkes: event %d has process %d outside [0,%d)", i, e.Process, k)
		}
		if math.IsNaN(e.Time) || math.IsInf(e.Time, 0) {
			return fmt.Errorf("hawkes: event %d has invalid time %v", i, e.Time)
		}
	}
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return nil
}

// CountByProcess returns the number of events on each of the k processes.
func CountByProcess(events []Event, k int) []int {
	counts := make([]int, k)
	for _, e := range events {
		if e.Process >= 0 && e.Process < k {
			counts[e.Process]++
		}
	}
	return counts
}
