package hawkes

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// Simulate draws a realisation of the model on the window [0, horizon) using
// the exact cluster (branching) representation of a Hawkes process:
// background events arrive as homogeneous Poisson processes with rates Mu,
// and every event on process a spawns Poisson(W[a][b]) direct offspring on
// each process b with exponential(Omega) delays. The returned events are
// sorted by time.
//
// The model must be subcritical (SpectralRadiusBound < 1) or simulation may
// not terminate; an error is returned in that case.
func (m *Model) Simulate(rng *rand.Rand, horizon float64) ([]Event, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		return nil, errors.New("hawkes: horizon must be positive")
	}
	if m.SpectralRadiusBound() >= 1 {
		return nil, errors.New("hawkes: model is supercritical (max row sum of W >= 1); simulation would explode")
	}

	var events []Event
	// Immigrants (background events).
	var frontier []Event
	for k := 0; k < m.K; k++ {
		t := 0.0
		for {
			if m.Mu[k] <= 0 {
				break
			}
			t += rng.ExpFloat64() / m.Mu[k]
			if t >= horizon {
				break
			}
			e := Event{Time: t, Process: k}
			events = append(events, e)
			frontier = append(frontier, e)
		}
	}
	// Offspring generations.
	for len(frontier) > 0 {
		var next []Event
		for _, parent := range frontier {
			for b := 0; b < m.K; b++ {
				w := m.W[parent.Process][b]
				if w <= 0 {
					continue
				}
				n := poisson(rng, w)
				for i := 0; i < n; i++ {
					delay := rng.ExpFloat64() / m.Omega
					t := parent.Time + delay
					if t >= horizon {
						continue
					}
					e := Event{Time: t, Process: b}
					events = append(events, e)
					next = append(next, e)
				}
			}
		}
		frontier = next
	}
	if err := SortEvents(events, m.K); err != nil {
		return nil, err
	}
	return events, nil
}

// SimulateWithGroundTruth simulates the model and additionally returns, for
// every event, the process of its root ancestor (the immigrant at the top of
// its branching tree). This ground truth is what the attribution estimator
// is validated against and what the synthetic dataset generator uses to
// embed a known influence structure.
func (m *Model) SimulateWithGroundTruth(rng *rand.Rand, horizon float64) ([]Event, []int, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	if horizon <= 0 {
		return nil, nil, errors.New("hawkes: horizon must be positive")
	}
	if m.SpectralRadiusBound() >= 1 {
		return nil, nil, errors.New("hawkes: model is supercritical; simulation would explode")
	}

	type node struct {
		ev   Event
		root int
	}
	var all []node
	var frontier []node
	for k := 0; k < m.K; k++ {
		t := 0.0
		for {
			if m.Mu[k] <= 0 {
				break
			}
			t += rng.ExpFloat64() / m.Mu[k]
			if t >= horizon {
				break
			}
			n := node{ev: Event{Time: t, Process: k}, root: k}
			all = append(all, n)
			frontier = append(frontier, n)
		}
	}
	for len(frontier) > 0 {
		var next []node
		for _, parent := range frontier {
			for b := 0; b < m.K; b++ {
				w := m.W[parent.ev.Process][b]
				if w <= 0 {
					continue
				}
				count := poisson(rng, w)
				for i := 0; i < count; i++ {
					delay := rng.ExpFloat64() / m.Omega
					t := parent.ev.Time + delay
					if t >= horizon {
						continue
					}
					n := node{ev: Event{Time: t, Process: b}, root: parent.root}
					all = append(all, n)
					next = append(next, n)
				}
			}
		}
		frontier = next
	}
	// Sort by time, keeping roots aligned.
	sort.SliceStable(all, func(i, j int) bool { return all[i].ev.Time < all[j].ev.Time })
	events := make([]Event, len(all))
	roots := make([]int, len(all))
	for i, n := range all {
		events[i] = n.ev
		roots[i] = n.root
	}
	return events, roots, nil
}

// poisson draws a Poisson-distributed integer with the given mean using
// Knuth's method for small means and a normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := rng.NormFloat64()*math.Sqrt(mean) + mean
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
