package hawkes

import (
	"errors"
	"fmt"
	"math"
)

// Attribution holds, for every event, the probability distribution over the
// processes that are its root cause: the community whose background rate
// ultimately started the cascade the event belongs to. This is the improved
// influence measure introduced in Section 5.1 of the paper (Figure 10): an
// event caused directly by the background of its own community attributes
// fully to that community; an event caused by a previous event inherits that
// event's (probabilistic) root cause.
type Attribution struct {
	// K is the number of processes.
	K int
	// RootCause[j][c] is the probability that process c is the root cause of
	// event j. Each row sums to 1.
	RootCause [][]float64
	// Events echoes the time-sorted events the attribution refers to.
	Events []Event
}

// Attribute computes root-cause probabilities from a fitted model and its
// responsibilities. It exploits the exponential kernel to carry, for every
// source process a, a decayed running mixture of the root-cause
// distributions of the events already seen on a, which makes the computation
// exact and O(n * K^2).
func Attribute(fit *FitResult) (*Attribution, error) {
	if fit == nil || fit.Model == nil {
		return nil, errors.New("hawkes: nil fit result")
	}
	k := fit.Model.K
	n := len(fit.Events)
	att := &Attribution{K: k, RootCause: make([][]float64, n), Events: fit.Events}
	if n == 0 {
		return att, nil
	}
	if len(fit.BackgroundResponsibility) != n || len(fit.SourceResponsibility) != n {
		return nil, fmt.Errorf("hawkes: responsibilities (%d, %d) do not match %d events",
			len(fit.BackgroundResponsibility), len(fit.SourceResponsibility), n)
	}
	omega := fit.Model.Omega

	// s[a] is the total decayed kernel mass of past events on process a;
	// r[a][c] is the decayed kernel mass weighted by those events' root-cause
	// probability of community c. r[a][c] / s[a] is then the probability that
	// a parent drawn from process a (with the kernel weighting) has root
	// cause c.
	s := make([]float64, k)
	r := make([][]float64, k)
	for a := range r {
		r[a] = make([]float64, k)
	}
	lastT := 0.0
	for j, e := range fit.Events {
		decay := math.Exp(-omega * (e.Time - lastT))
		for a := 0; a < k; a++ {
			s[a] *= decay
			for c := 0; c < k; c++ {
				r[a][c] *= decay
			}
		}
		lastT = e.Time

		row := make([]float64, k)
		row[e.Process] += fit.BackgroundResponsibility[j]
		for a := 0; a < k; a++ {
			resp := fit.SourceResponsibility[j][a]
			if resp <= 0 || s[a] <= 0 {
				continue
			}
			for c := 0; c < k; c++ {
				row[c] += resp * r[a][c] / s[a]
			}
		}
		// Normalise against numerical drift.
		sum := 0.0
		for _, v := range row {
			sum += v
		}
		if sum > 0 {
			for c := range row {
				row[c] /= sum
			}
		} else {
			row[e.Process] = 1
		}
		att.RootCause[j] = row

		// The event now contributes its own root-cause mixture to future
		// events on its process.
		s[e.Process] += omega
		for c := 0; c < k; c++ {
			r[e.Process][c] += omega * row[c]
		}
	}
	return att, nil
}

// InfluenceMatrix aggregates the attribution into the paper's "raw
// influence" matrix (Figure 11): entry [src][dst] is the expected fraction
// of events on the destination community whose root cause is the source
// community, expressed in [0, 1].
func (a *Attribution) InfluenceMatrix() [][]float64 {
	out := make([][]float64, a.K)
	for i := range out {
		out[i] = make([]float64, a.K)
	}
	destTotals := make([]float64, a.K)
	for j, e := range a.Events {
		destTotals[e.Process]++
		for c := 0; c < a.K; c++ {
			out[c][e.Process] += a.RootCause[j][c]
		}
	}
	for src := 0; src < a.K; src++ {
		for dst := 0; dst < a.K; dst++ {
			if destTotals[dst] > 0 {
				out[src][dst] /= destTotals[dst]
			}
		}
	}
	return out
}

// NormalizedInfluenceMatrix aggregates the attribution into the paper's
// "efficiency" matrix (Figure 12): entry [src][dst] is the expected number
// of events on the destination attributed to the source, divided by the
// total number of events on the source community. Diagonal entries can
// exceed 1 (a community is credited with its own events plus the cascades
// they start there).
func (a *Attribution) NormalizedInfluenceMatrix() [][]float64 {
	out := make([][]float64, a.K)
	for i := range out {
		out[i] = make([]float64, a.K)
	}
	srcTotals := make([]float64, a.K)
	for _, e := range a.Events {
		srcTotals[e.Process]++
	}
	for j, e := range a.Events {
		for c := 0; c < a.K; c++ {
			out[c][e.Process] += a.RootCause[j][c]
		}
	}
	for src := 0; src < a.K; src++ {
		for dst := 0; dst < a.K; dst++ {
			if srcTotals[src] > 0 {
				out[src][dst] /= srcTotals[src]
			}
		}
	}
	return out
}

// ExternalInfluence sums, for every source, the normalized influence on all
// destinations other than itself — the paper's "Total Ext" column in
// Figures 12, 15 and 16.
func (a *Attribution) ExternalInfluence() []float64 {
	norm := a.NormalizedInfluenceMatrix()
	out := make([]float64, a.K)
	for src := 0; src < a.K; src++ {
		for dst := 0; dst < a.K; dst++ {
			if dst != src {
				out[src] += norm[src][dst]
			}
		}
	}
	return out
}

// TotalInfluence sums the normalized influence of every source over all
// destinations including itself — the paper's "Total" column.
func (a *Attribution) TotalInfluence() []float64 {
	norm := a.NormalizedInfluenceMatrix()
	out := make([]float64, a.K)
	for src := 0; src < a.K; src++ {
		for dst := 0; dst < a.K; dst++ {
			out[src] += norm[src][dst]
		}
	}
	return out
}

// RootCauseShare returns, for each process, the total probability mass of
// events attributed to it as root cause, divided by the total number of
// events. The shares sum to 1.
func (a *Attribution) RootCauseShare() []float64 {
	out := make([]float64, a.K)
	if len(a.Events) == 0 {
		return out
	}
	for j := range a.Events {
		for c := 0; c < a.K; c++ {
			out[c] += a.RootCause[j][c]
		}
	}
	for c := range out {
		out[c] /= float64(len(a.Events))
	}
	return out
}
