// Package graphviz builds and lays out the cluster graph of Figure 7: nodes
// are the medoids of annotated clusters, edges connect clusters whose custom
// distance falls below a threshold kappa, low-degree nodes are filtered out,
// and the remaining graph is laid out with a force-directed algorithm
// (standing in for the OpenOrd layout used by the paper) and exported as DOT
// or JSON for inspection.
package graphviz

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
)

// Node is a cluster in the visualisation graph.
type Node struct {
	// ID is the node's index in the graph.
	ID int
	// Label is the cluster's representative annotation (KYM entry name).
	Label string
	// Group is the colour group; the paper colours nodes by their annotation.
	Group string
	// Size is a display weight, e.g. the number of images in the cluster.
	Size int
	// X, Y are layout coordinates, populated by Layout.
	X, Y float64
}

// Edge connects two clusters whose distance is below the graph threshold.
type Edge struct {
	From, To int
	// Weight is 1 - distance, so heavier edges are more similar.
	Weight float64
}

// Graph is an undirected graph over annotated clusters.
type Graph struct {
	Nodes []Node
	Edges []Edge
}

// DefaultKappa is the distance threshold used for Figure 7.
const DefaultKappa = 0.45

// Build constructs a graph from a pairwise distance matrix. labels and
// groups give the display label and colour group of each node; sizes may be
// nil. An edge is added for every pair with distance <= kappa.
func Build(dist [][]float64, labels, groups []string, sizes []int, kappa float64) (*Graph, error) {
	n := len(dist)
	if n == 0 {
		return nil, errors.New("graphviz: empty distance matrix")
	}
	if len(labels) != n || len(groups) != n {
		return nil, fmt.Errorf("graphviz: labels (%d) and groups (%d) must match matrix size %d",
			len(labels), len(groups), n)
	}
	if sizes != nil && len(sizes) != n {
		return nil, fmt.Errorf("graphviz: sizes length %d must match matrix size %d", len(sizes), n)
	}
	if kappa < 0 || kappa > 1 {
		return nil, fmt.Errorf("graphviz: kappa %v outside [0,1]", kappa)
	}
	g := &Graph{Nodes: make([]Node, n)}
	for i := 0; i < n; i++ {
		size := 1
		if sizes != nil {
			size = sizes[i]
		}
		g.Nodes[i] = Node{ID: i, Label: labels[i], Group: groups[i], Size: size}
	}
	for i := 0; i < n; i++ {
		if len(dist[i]) != n {
			return nil, fmt.Errorf("graphviz: distance matrix row %d has length %d, want %d", i, len(dist[i]), n)
		}
		for j := i + 1; j < n; j++ {
			if dist[i][j] <= kappa {
				g.Edges = append(g.Edges, Edge{From: i, To: j, Weight: 1 - dist[i][j]})
			}
		}
	}
	return g, nil
}

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	deg := make([]int, len(g.Nodes))
	for _, e := range g.Edges {
		deg[e.From]++
		deg[e.To]++
	}
	return deg
}

// FilterByDegree returns a new graph containing only nodes whose total
// degree is at least minDegree, re-indexed densely, and the edges among
// them. The paper filters Figure 7 to nodes with degree >= 10.
func (g *Graph) FilterByDegree(minDegree int) *Graph {
	deg := g.Degrees()
	remap := make(map[int]int)
	out := &Graph{}
	for i, n := range g.Nodes {
		if deg[i] >= minDegree {
			remap[i] = len(out.Nodes)
			n.ID = len(out.Nodes)
			out.Nodes = append(out.Nodes, n)
		}
	}
	for _, e := range g.Edges {
		f, okF := remap[e.From]
		t, okT := remap[e.To]
		if okF && okT {
			out.Edges = append(out.Edges, Edge{From: f, To: t, Weight: e.Weight})
		}
	}
	return out
}

// ConnectedComponents returns the node indexes of each connected component,
// largest first.
func (g *Graph) ConnectedComponents() [][]int {
	n := len(g.Nodes)
	adj := make([][]int, n)
	for _, e := range g.Edges {
		adj[e.From] = append(adj[e.From], e.To)
		adj[e.To] = append(adj[e.To], e.From)
	}
	seen := make([]bool, n)
	var comps [][]int
	for start := 0; start < n; start++ {
		if seen[start] {
			continue
		}
		var comp []int
		stack := []int{start}
		seen[start] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, w := range adj[v] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool { return len(comps[i]) > len(comps[j]) })
	return comps
}

// ComponentPurity returns, for each connected component with at least two
// nodes, the fraction of its nodes sharing the component's most common
// group. Figure 7's qualitative claim is that components are dominated by a
// single meme (group), i.e. purity is high.
func (g *Graph) ComponentPurity() []float64 {
	var out []float64
	for _, comp := range g.ConnectedComponents() {
		if len(comp) < 2 {
			continue
		}
		counts := map[string]int{}
		for _, v := range comp {
			counts[g.Nodes[v].Group]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		out = append(out, float64(max)/float64(len(comp)))
	}
	return out
}

// LayoutConfig controls the force-directed layout.
type LayoutConfig struct {
	// Iterations is the number of relaxation rounds.
	Iterations int
	// Width and Height bound the layout area.
	Width, Height float64
	// Seed makes the initial placement deterministic.
	Seed int64
}

// DefaultLayoutConfig returns a layout configuration adequate for graphs of
// a few thousand nodes.
func DefaultLayoutConfig() LayoutConfig {
	return LayoutConfig{Iterations: 100, Width: 1000, Height: 1000, Seed: 1}
}

// Layout computes node positions with a Fruchterman-Reingold force-directed
// layout and stores them in the graph's nodes.
func (g *Graph) Layout(cfg LayoutConfig) error {
	n := len(g.Nodes)
	if n == 0 {
		return errors.New("graphviz: cannot lay out an empty graph")
	}
	if cfg.Iterations <= 0 || cfg.Width <= 0 || cfg.Height <= 0 {
		return errors.New("graphviz: invalid layout configuration")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i := range g.Nodes {
		g.Nodes[i].X = rng.Float64() * cfg.Width
		g.Nodes[i].Y = rng.Float64() * cfg.Height
	}
	area := cfg.Width * cfg.Height
	k := math.Sqrt(area / float64(n))
	temp := cfg.Width / 10

	dispX := make([]float64, n)
	dispY := make([]float64, n)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for i := range dispX {
			dispX[i], dispY[i] = 0, 0
		}
		// Repulsive forces between all pairs.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := g.Nodes[i].X - g.Nodes[j].X
				dy := g.Nodes[i].Y - g.Nodes[j].Y
				d := math.Hypot(dx, dy)
				if d < 1e-9 {
					d = 1e-9
					dx = rng.Float64()*2 - 1
					dy = rng.Float64()*2 - 1
				}
				force := k * k / d
				dispX[i] += dx / d * force
				dispY[i] += dy / d * force
				dispX[j] -= dx / d * force
				dispY[j] -= dy / d * force
			}
		}
		// Attractive forces along edges.
		for _, e := range g.Edges {
			dx := g.Nodes[e.From].X - g.Nodes[e.To].X
			dy := g.Nodes[e.From].Y - g.Nodes[e.To].Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				continue
			}
			force := d * d / k * e.Weight
			dispX[e.From] -= dx / d * force
			dispY[e.From] -= dy / d * force
			dispX[e.To] += dx / d * force
			dispY[e.To] += dy / d * force
		}
		// Apply displacements limited by temperature, clamp to the frame.
		for i := range g.Nodes {
			d := math.Hypot(dispX[i], dispY[i])
			if d < 1e-9 {
				continue
			}
			limited := math.Min(d, temp)
			g.Nodes[i].X += dispX[i] / d * limited
			g.Nodes[i].Y += dispY[i] / d * limited
			g.Nodes[i].X = math.Max(0, math.Min(cfg.Width, g.Nodes[i].X))
			g.Nodes[i].Y = math.Max(0, math.Min(cfg.Height, g.Nodes[i].Y))
		}
		temp *= 0.95
	}
	return nil
}

// DOT renders the graph in Graphviz DOT format.
func (g *Graph) DOT() string {
	var b strings.Builder
	b.WriteString("graph memes {\n")
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  n%d [label=%q, group=%q, width=%d, pos=\"%.1f,%.1f\"];\n",
			n.ID, n.Label, n.Group, n.Size, n.X, n.Y)
	}
	for _, e := range g.Edges {
		fmt.Fprintf(&b, "  n%d -- n%d [weight=%.3f];\n", e.From, e.To, e.Weight)
	}
	b.WriteString("}\n")
	return b.String()
}

// JSON renders the graph as a JSON document with "nodes" and "edges" arrays,
// the format consumed by common web-based graph viewers.
func (g *Graph) JSON() ([]byte, error) {
	return json.MarshalIndent(struct {
		Nodes []Node `json:"nodes"`
		Edges []Edge `json:"edges"`
	}{Nodes: g.Nodes, Edges: g.Edges}, "", "  ")
}
