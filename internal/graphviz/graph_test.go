package graphviz

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// twoClusterMatrix builds a 6-node distance matrix with two tight groups
// (0,1,2) and (3,4,5) that are far from each other.
func twoClusterMatrix() ([][]float64, []string, []string) {
	n := 6
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	set := func(i, j int, v float64) { d[i][j] = v; d[j][i] = v }
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			set(i, j, 0.1)
		}
	}
	for i := 3; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			set(i, j, 0.2)
		}
	}
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			set(i, j, 0.9)
		}
	}
	labels := []string{"pepe", "pepe", "pepe", "merchant", "merchant", "merchant"}
	groups := []string{"pepe", "pepe", "pepe", "merchant", "merchant", "merchant"}
	return d, labels, groups
}

func TestBuildValidation(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	if _, err := Build(nil, nil, nil, nil, 0.5); err == nil {
		t.Fatal("empty matrix should be rejected")
	}
	if _, err := Build(d, labels[:2], groups, nil, 0.5); err == nil {
		t.Fatal("short labels should be rejected")
	}
	if _, err := Build(d, labels, groups, []int{1}, 0.5); err == nil {
		t.Fatal("short sizes should be rejected")
	}
	if _, err := Build(d, labels, groups, nil, 1.5); err == nil {
		t.Fatal("kappa > 1 should be rejected")
	}
	ragged := [][]float64{{0, 0.1}, {0.1}}
	if _, err := Build(ragged, []string{"a", "b"}, []string{"a", "b"}, nil, 0.5); err == nil {
		t.Fatal("ragged matrix should be rejected")
	}
}

func TestBuildEdgesRespectKappa(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	g, err := Build(d, labels, groups, nil, DefaultKappa)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Nodes) != 6 {
		t.Fatalf("node count %d", len(g.Nodes))
	}
	// Within-group pairs: 3 + 3 = 6 edges; across groups none.
	if len(g.Edges) != 6 {
		t.Fatalf("edge count %d, want 6", len(g.Edges))
	}
	for _, e := range g.Edges {
		if (e.From < 3) != (e.To < 3) {
			t.Fatalf("cross-group edge %+v should not exist at kappa=%v", e, DefaultKappa)
		}
		if e.Weight <= 0 || e.Weight > 1 {
			t.Fatalf("edge weight out of range: %v", e.Weight)
		}
	}
}

func TestDegreesAndFilter(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	g, err := Build(d, labels, groups, []int{5, 5, 5, 2, 2, 2}, DefaultKappa)
	if err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	for i, dg := range deg {
		if dg != 2 {
			t.Fatalf("node %d degree %d, want 2", i, dg)
		}
	}
	// Filtering at min degree 3 removes everything; at 2 keeps everything.
	if got := g.FilterByDegree(3); len(got.Nodes) != 0 {
		t.Fatalf("filter(3) kept %d nodes", len(got.Nodes))
	}
	kept := g.FilterByDegree(2)
	if len(kept.Nodes) != 6 || len(kept.Edges) != 6 {
		t.Fatalf("filter(2) kept %d nodes %d edges", len(kept.Nodes), len(kept.Edges))
	}
	// Node IDs must be re-indexed densely.
	for i, n := range kept.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d after filtering", i, n.ID)
		}
	}
}

func TestConnectedComponentsAndPurity(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	g, err := Build(d, labels, groups, nil, DefaultKappa)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("component count %d, want 2", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 3 {
		t.Fatalf("component sizes %d/%d", len(comps[0]), len(comps[1]))
	}
	purity := g.ComponentPurity()
	for _, p := range purity {
		if p != 1 {
			t.Fatalf("component purity %v, want 1 (monochrome components)", p)
		}
	}
}

func TestLayoutSeparatesComponents(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	g, err := Build(d, labels, groups, nil, DefaultKappa)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultLayoutConfig()
	cfg.Iterations = 150
	if err := g.Layout(cfg); err != nil {
		t.Fatal(err)
	}
	// All coordinates must be inside the frame.
	for _, n := range g.Nodes {
		if n.X < 0 || n.X > cfg.Width || n.Y < 0 || n.Y > cfg.Height {
			t.Fatalf("node %d outside frame: (%v,%v)", n.ID, n.X, n.Y)
		}
	}
	// Mean within-group distance should be smaller than between-group
	// distance after layout.
	distXY := func(a, b Node) float64 { return math.Hypot(a.X-b.X, a.Y-b.Y) }
	var within, between float64
	var nw, nb int
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			dd := distXY(g.Nodes[i], g.Nodes[j])
			if (i < 3) == (j < 3) {
				within += dd
				nw++
			} else {
				between += dd
				nb++
			}
		}
	}
	if within/float64(nw) >= between/float64(nb) {
		t.Fatalf("layout did not separate groups: within %v vs between %v",
			within/float64(nw), between/float64(nb))
	}
}

func TestLayoutValidation(t *testing.T) {
	g := &Graph{}
	if err := g.Layout(DefaultLayoutConfig()); err == nil {
		t.Fatal("empty graph layout should fail")
	}
	d, labels, groups := twoClusterMatrix()
	g2, _ := Build(d, labels, groups, nil, 0.5)
	if err := g2.Layout(LayoutConfig{Iterations: 0, Width: 10, Height: 10}); err == nil {
		t.Fatal("zero iterations should fail")
	}
}

func TestDOTAndJSONExport(t *testing.T) {
	d, labels, groups := twoClusterMatrix()
	g, err := Build(d, labels, groups, nil, DefaultKappa)
	if err != nil {
		t.Fatal(err)
	}
	dot := g.DOT()
	if !strings.HasPrefix(dot, "graph memes {") || !strings.Contains(dot, "n0 -- ") {
		t.Fatalf("unexpected DOT output:\n%s", dot)
	}
	if !strings.Contains(dot, `label="pepe"`) {
		t.Fatal("DOT output missing labels")
	}
	raw, err := g.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Nodes []Node `json:"nodes"`
		Edges []Edge `json:"edges"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("JSON round trip failed: %v", err)
	}
	if len(decoded.Nodes) != 6 || len(decoded.Edges) != 6 {
		t.Fatalf("JSON content wrong: %d nodes %d edges", len(decoded.Nodes), len(decoded.Edges))
	}
}
