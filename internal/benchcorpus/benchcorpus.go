// Package benchcorpus pins the single corpus configuration shared by every
// performance harness — the `go test -bench` suite in bench_test.go and the
// cmd/memebench trajectory runner — so their numbers stay comparable by
// construction rather than by a keep-in-sync comment. Change it here and
// every harness moves together (and the committed BENCH_*.json trajectory
// points gain a new corpus generation).
package benchcorpus

import "github.com/memes-pipeline/memes/internal/dataset"

// Config returns the benchmark corpus: a mid-sized synthetic corpus, large
// enough that the paper's qualitative shapes emerge, small enough that the
// full benchmark suite runs in minutes on a laptop.
func Config() dataset.Config {
	cfg := dataset.DefaultConfig()
	cfg.NumMemes = 60
	cfg.DurationDays = 200
	cfg.NoiseImages = map[dataset.Community]int{
		dataset.Pol: 20000, dataset.Reddit: 7000, dataset.Twitter: 11000,
		dataset.Gab: 1100, dataset.TheDonald: 2200,
	}
	cfg.PostsWithoutImages = map[dataset.Community]int{
		dataset.Pol: 8000, dataset.Reddit: 20000, dataset.Twitter: 30000,
		dataset.Gab: 2000, dataset.TheDonald: 2500,
	}
	return cfg
}
