package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/analysis"
	"github.com/memes-pipeline/memes/internal/declog"
)

// newAnalysisEnv is newTestEnvCfg with a dataset-bound loader: the served
// engine carries the corpus (memes.WithDataset), as memeserve's loader
// does, so /v1/influence and /v1/report can materialise the full pipeline
// result. loaderOpts are appended to the loader's option list — the worker
// knobs of the bitwise-equivalence tests go through here.
func newAnalysisEnv(t *testing.T, loaderOpts []memes.Option, mut func(*Config)) *testEnv {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(t.Context(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	snap := filepath.Join(t.TempDir(), "engine.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := eng.Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	env := &testEnv{ds: ds, eng: eng}
	loader := func() (*memes.Engine, error) {
		if env.failLoads.Load() {
			return nil, errors.New("injected loader failure")
		}
		r, err := os.Open(snap)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		opts := append([]memes.Option{memes.WithDataset(ds)}, loaderOpts...)
		return memes.LoadEngine(r, site, opts...)
	}
	cfg := Config{Loader: loader}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	env.srv, env.ts = srv, ts
	return env
}

// eqMatrix compares float64 matrices bitwise (Float64bits, not ==), so the
// check means "same bits", the contract the influence endpoint promises.
func eqMatrix(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !eqVec(a[i], b[i]) {
			return false
		}
	}
	return true
}

func eqVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestInfluenceServedMatchesOffline pins the tentpole equivalence claim:
// the served influence matrices are bitwise-identical to the offline
// analysis path, across worker counts. The served engine runs Workers=1;
// the offline reference runs the default worker pool (GOMAXPROCS) — if the
// parallel fit fold were order-sensitive, this test would flake, not just
// fail.
func TestInfluenceServedMatchesOffline(t *testing.T) {
	e := newAnalysisEnv(t, []memes.Option{memes.WithWorkers(1)}, nil)
	want, err := analysis.EstimateInfluence(e.eng.Result(), analysis.AllMemes, analysis.DefaultInfluenceConfig())
	if err != nil {
		t.Fatalf("offline EstimateInfluence: %v", err)
	}

	for _, body := range []string{``, `{}`, `{"group":"all"}`} {
		var got influenceResponse
		if code, raw := e.do(t, http.MethodPost, "/v1/influence", []byte(body), &got); code != http.StatusOK {
			t.Fatalf("influence %q: status %d: %.300s", body, code, raw)
		}
		if got.Group != want.Group.String() || got.Generation != 1 {
			t.Fatalf("influence %q: group=%q generation=%d", body, got.Group, got.Generation)
		}
		if len(got.Communities) != len(want.Communities) {
			t.Fatalf("communities: %v vs %v", got.Communities, want.Communities)
		}
		for i := range want.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("events[%d] = %d, want %d", i, got.Events[i], want.Events[i])
			}
		}
		if !eqMatrix(got.Raw, want.Raw) {
			t.Errorf("raw matrix diverges from offline:\nserved %v\noffline %v", got.Raw, want.Raw)
		}
		if !eqMatrix(got.Normalized, want.Normalized) {
			t.Errorf("normalized matrix diverges from offline")
		}
		if !eqVec(got.TotalExternal, want.TotalExternal) || !eqVec(got.Total, want.Total) {
			t.Errorf("total columns diverge from offline")
		}
	}
}

// TestInfluenceGroupAndOverrides covers group selection and config
// overrides: a non-default group answers that group's offline result, and
// a bad group is a 400 with the shared envelope.
func TestInfluenceGroupAndOverrides(t *testing.T) {
	e := newAnalysisEnv(t, nil, nil)
	cfg := analysis.DefaultInfluenceConfig()
	cfg.MaxIter = 10
	want, err := analysis.EstimateInfluenceCtx(t.Context(), e.eng.Result(), analysis.RacistMemes, cfg)
	if err != nil {
		t.Fatalf("offline EstimateInfluenceCtx: %v", err)
	}
	var got influenceResponse
	body := fmt.Sprintf(`{"group":"racist","max_iter":%d}`, cfg.MaxIter)
	if code, raw := e.do(t, http.MethodPost, "/v1/influence", []byte(body), &got); code != http.StatusOK {
		t.Fatalf("influence: status %d: %.300s", code, raw)
	}
	if got.Group != "racist" || !eqMatrix(got.Raw, want.Raw) {
		t.Errorf("served racist/max_iter=10 diverges from offline")
	}

	code, raw := e.do(t, http.MethodPost, "/v1/influence", []byte(`{"group":"nope"}`), nil)
	if code != http.StatusBadRequest {
		t.Fatalf("bad group: status %d: %s", code, raw)
	}
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil || er.Reason != reasonBadRequest {
		t.Errorf("bad group envelope: %s (err %v)", raw, err)
	}
}

// TestAnalysisDisabledWithoutDataset verifies a pure serving replica (no
// memes.WithDataset in the loader) answers 503/analysis_disabled on both
// analysis endpoints instead of failing deeper.
func TestAnalysisDisabledWithoutDataset(t *testing.T) {
	e := newTestEnv(t)
	for _, rq := range []struct{ method, path string }{
		{http.MethodPost, "/v1/influence"},
		{http.MethodGet, "/v1/report"},
	} {
		code, raw := e.do(t, rq.method, rq.path, nil, nil)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s without dataset: status %d: %s", rq.path, code, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Reason != reasonAnalysisDisabled {
			t.Errorf("%s envelope: %s (err %v)", rq.path, raw, err)
		}
	}
}

// TestReportServedMatchesOffline asserts GET /v1/report carries exactly the
// sections the offline report renders for the same corpus, and that the
// per-generation cache answers identically on a second request.
func TestReportServedMatchesOffline(t *testing.T) {
	e := newAnalysisEnv(t, nil, nil)
	rep, err := analysis.NewReport(e.eng.Result())
	if err != nil {
		t.Fatalf("offline NewReport: %v", err)
	}
	want, err := rep.Sections()
	if err != nil {
		t.Fatalf("offline Sections: %v", err)
	}
	for pass := 1; pass <= 2; pass++ {
		var got reportResponse
		if code, raw := e.do(t, http.MethodGet, "/v1/report", nil, &got); code != http.StatusOK {
			t.Fatalf("report pass %d: status %d: %.300s", pass, code, raw)
		}
		if got.Generation != 1 {
			t.Fatalf("report generation = %d", got.Generation)
		}
		if len(got.Sections) != len(want) {
			t.Fatalf("report pass %d: %d sections, want %d", pass, len(got.Sections), len(want))
		}
		for i := range want {
			if got.Sections[i].Title != want[i].Title || got.Sections[i].Body != want[i].Body {
				t.Fatalf("report pass %d section %d (%q) diverges from offline", pass, i, want[i].Title)
			}
		}
	}
}

// TestInfluenceCancellationNoLeak cancels an influence request mid-fit and
// asserts (a) the handler path honours the cancellation and (b) no worker
// goroutines outlive the request — the goroutine-leak half of the hawkes
// serving contract.
func TestInfluenceCancellationNoLeak(t *testing.T) {
	e := newAnalysisEnv(t, nil, nil)
	// Settle and take the baseline after one warm-up request, so lazily
	// started http/test goroutines are not counted as leaks.
	if code, raw := e.do(t, http.MethodPost, "/v1/influence", nil, nil); code != http.StatusOK {
		t.Fatalf("warm-up influence: status %d: %s", code, raw)
	}
	e.ts.Client().CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(t.Context())
		// max_iter is huge so the EM loops are still running when the cancel
		// lands; the per-iteration ctx check is what stops them.
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.ts.URL+"/v1/influence",
			strings.NewReader(`{"max_iter":1000000}`))
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := e.ts.Client().Do(req)
			if err == nil {
				resp.Body.Close()
			}
		}()
		time.Sleep(5 * time.Millisecond)
		cancel()
		<-done
	}

	e.ts.Client().CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after cancelled influence fits: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}

// collectSink gathers flushed decisions for the hammer assertions.
type collectSink struct {
	mu  sync.Mutex
	all []declog.Decision
}

func (s *collectSink) Upload(ctx context.Context, batch []declog.Decision) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append(s.all, batch...)
	return nil
}

// TestDecisionLogHammer drives concurrent /v1/associate traffic through a
// decision-logging server while hot reloads swap the engine underneath,
// then asserts exactly-once capture: every post of every served request
// yields exactly one decision — dense unique sequence numbers, zero drops,
// zero duplicates.
func TestDecisionLogHammer(t *testing.T) {
	sink := &collectSink{}
	logger, err := declog.New(declog.Config{Sink: sink, BufferSize: 1 << 16, BatchSize: 128, FlushInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	e := newAnalysisEnv(t, nil, func(c *Config) { c.DecisionLog = logger })

	posts := e.ds.Posts
	if len(posts) > 64 {
		posts = posts[:64]
	}
	body, err := json.Marshal(associateRequest{Posts: posts})
	if err != nil {
		t.Fatal(err)
	}

	const workers, reqs = 6, 15
	var wg sync.WaitGroup
	var served int64
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reqs; i++ {
				code, raw := e.do(t, http.MethodPost, "/v1/associate", body, nil)
				if code != http.StatusOK {
					t.Errorf("associate during hammer: status %d: %.200s", code, raw)
					return
				}
				mu.Lock()
				served++
				mu.Unlock()
			}
		}()
	}
	// Hot reloads race the traffic: decisions must neither drop nor double
	// across the swap.
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		for i := 0; i < 5; i++ {
			if _, err := e.srv.Reload(); err != nil {
				t.Errorf("reload during hammer: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	wg.Wait()
	<-reloadDone
	if err := logger.Close(); err != nil {
		t.Fatal(err)
	}

	st := logger.Stats()
	wantDecisions := served * int64(len(posts))
	if st.Dropped != 0 {
		t.Fatalf("hammer dropped %d decisions (buffer must be sized for the load)", st.Dropped)
	}
	if int64(st.Logged) != wantDecisions {
		t.Fatalf("logged %d decisions, want %d (%d served × %d posts)", st.Logged, wantDecisions, served, len(posts))
	}
	sink.mu.Lock()
	got := append([]declog.Decision(nil), sink.all...)
	sink.mu.Unlock()
	if int64(len(got)) != wantDecisions {
		t.Fatalf("sink received %d decisions, want %d", len(got), wantDecisions)
	}
	seen := make(map[uint64]bool, len(got))
	for _, d := range got {
		if d.Endpoint != "associate" {
			t.Fatalf("unexpected endpoint %q in hammer stream", d.Endpoint)
		}
		if seen[d.Seq] {
			t.Fatalf("duplicate decision seq %d", d.Seq)
		}
		seen[d.Seq] = true
		if d.Seq == 0 || int64(d.Seq) > wantDecisions {
			t.Fatalf("seq %d outside dense range [1,%d]", d.Seq, wantDecisions)
		}
	}
}

// parseExposition parses Prometheus text format into sample name{labels} →
// value, failing on lines that violate the format.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			if strings.HasPrefix(line, "#") && !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		idx := strings.LastIndex(line, " ")
		if idx < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, valStr := line[:idx], line[idx+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			switch valStr {
			case "+Inf":
				v = math.Inf(1)
			case "-Inf":
				v = math.Inf(-1)
			case "NaN":
				v = math.NaN()
			default:
				t.Fatalf("unparseable value in %q: %v", line, err)
			}
		}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		out[key] = v
	}
	return out
}

// TestMetricsScrapeAgreesWithStatsz generates mixed traffic, scrapes
// /v1/metrics, and asserts the exposition parses and its counters equal
// the /v1/statsz document — the agree-by-construction contract.
func TestMetricsScrapeAgreesWithStatsz(t *testing.T) {
	e := newAnalysisEnv(t, nil, nil)
	clusters := e.eng.Clusters()
	hit := fmt.Sprintf(`{"hash":"%016x"}`, uint64(clusters[0].MedoidHash))
	miss := fmt.Sprintf(`{"hash":"%016x"}`, uint64(farHash(t, e.eng)))
	for i := 0; i < 3; i++ {
		if code, _ := e.do(t, http.MethodPost, "/v1/match", []byte(hit), nil); code != http.StatusOK {
			t.Fatalf("match hit status %d", code)
		}
	}
	if code, _ := e.do(t, http.MethodPost, "/v1/match", []byte(miss), nil); code != http.StatusOK {
		t.Fatalf("match miss status %d", code)
	}
	body, _ := json.Marshal(associateRequest{Posts: e.ds.Posts[:8]})
	if code, _ := e.do(t, http.MethodPost, "/v1/associate", body, nil); code != http.StatusOK {
		t.Fatal("associate failed")
	}
	if code, _ := e.do(t, http.MethodPost, "/v1/match", []byte(`{"hash":"zz"}`), nil); code != http.StatusBadRequest {
		t.Fatal("bad match did not 400")
	}
	if _, err := e.srv.Reload(); err != nil {
		t.Fatalf("reload: %v", err)
	}

	req, err := http.NewRequest(http.MethodGet, e.ts.URL+"/v1/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 0)
	{
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for sc.Scan() {
			raw = append(raw, sc.Bytes()...)
			raw = append(raw, '\n')
		}
		resp.Body.Close()
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	samples := parseExposition(t, string(raw))

	// The scrape itself is counted, so statsz (fetched after) must agree on
	// every counter that the scrape could not have bumped.
	var doc StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &doc); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	for name, want := range map[string]float64{
		`memes_requests_total{endpoint="match"}`:     float64(doc.Requests.Match),
		`memes_requests_total{endpoint="associate"}`: float64(doc.Requests.Associate),
		`memes_requests_total{endpoint="influence"}`: float64(doc.Requests.Influence),
		`memes_requests_total{endpoint="report"}`:    float64(doc.Requests.Report),
		`memes_requests_total{endpoint="reload"}`:    float64(doc.Requests.Reload),
		`memes_errors_total`:                         float64(doc.Requests.Errors),
		`memes_match_total{outcome="matched"}`:       float64(doc.Match.Matched),
		`memes_match_total{outcome="missed"}`:        float64(doc.Match.Missed),
		`memes_associate_posts_total`:                float64(doc.Associate.Posts),
		`memes_associations_total`:                   float64(doc.Associate.Associations),
		`memes_batches_total`:                        float64(doc.Batcher.Batches),
		`memes_reloads_total`:                        float64(doc.Reloads),
		`memes_engine_generation`:                    float64(doc.Generation),
		`memes_clusters`:                             float64(doc.Clusters),
		`memes_annotated_clusters`:                   float64(doc.AnnotatedClusters),
		`memes_overload_shed_total`:                  float64(doc.Overload.Shed),
		`memes_handler_panics_total`:                 float64(doc.Overload.Panics),
		`memes_degraded`:                             0,
	} {
		got, ok := samples[name]
		if !ok {
			t.Errorf("scrape is missing %s", name)
			continue
		}
		if got != want {
			t.Errorf("%s = %v, statsz says %v", name, got, want)
		}
	}

	// The latency histogram observed the traffic: buckets are cumulative
	// and the count line equals the +Inf bucket.
	inf := samples[`memes_request_duration_seconds_bucket{endpoint="match",le="+Inf"}`]
	count := samples[`memes_request_duration_seconds_count{endpoint="match"}`]
	if inf == 0 || inf != count {
		t.Errorf("match histogram: +Inf bucket %v, count %v (want equal, nonzero)", inf, count)
	}
	if inf != float64(doc.Requests.Match) {
		t.Errorf("match histogram count %v, request counter %v", inf, doc.Requests.Match)
	}
}

// TestMetricsDisabled verifies Config.DisableMetrics unregisters the
// endpoint (404) while everything else keeps serving.
func TestMetricsDisabled(t *testing.T) {
	e := newTestEnvCfg(t, func(c *Config) { c.DisableMetrics = true })
	if code, _ := e.do(t, http.MethodGet, "/v1/metrics", nil, nil); code != http.StatusNotFound {
		t.Fatalf("disabled metrics answered %d, want 404", code)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatal("healthz broke alongside disabled metrics")
	}
}

// TestStatszDecisionLogBlock verifies statsz carries the decision-log
// accounting when a logger is configured, and a disabled block otherwise.
func TestStatszDecisionLogBlock(t *testing.T) {
	sink := &collectSink{}
	logger, err := declog.New(declog.Config{Sink: sink, FlushInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer logger.Close()
	e := newAnalysisEnv(t, nil, func(c *Config) { c.DecisionLog = logger })
	body, _ := json.Marshal(associateRequest{Posts: e.ds.Posts[:4]})
	if code, _ := e.do(t, http.MethodPost, "/v1/associate", body, nil); code != http.StatusOK {
		t.Fatal("associate failed")
	}
	var doc StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &doc); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if !doc.DecisionLog.Enabled || doc.DecisionLog.Logged != 4 {
		t.Errorf("decision-log stats: %+v, want enabled with 4 logged", doc.DecisionLog)
	}

	plain := newTestEnv(t)
	var plainDoc StatsDoc
	if code, _ := plain.do(t, http.MethodGet, "/v1/statsz", nil, &plainDoc); code != http.StatusOK {
		t.Fatal("statsz failed")
	}
	if plainDoc.DecisionLog.Enabled {
		t.Error("decision-log stats enabled without a logger")
	}
}
