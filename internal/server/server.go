// Package server is the production HTTP serving layer over a resident
// memes.Engine: the subsystem that takes the paper's operating regime — a
// fixed artifact of annotated clusters answering association queries over
// community traffic (§7 runs Step 6 over 160M images) — onto the network.
//
// A Server loads its engine through a caller-supplied loader (typically
// memes.LoadEngine over a MEMESNAP snapshot), serves goroutine-safe queries
// from it, and hot-swaps a freshly built snapshot in with zero dropped
// requests: every request pins one engine generation from a memes.HotEngine
// for its whole lifetime, so Reload (wired to POST /v1/admin/reload and, in
// cmd/memeserve, SIGHUP) replaces the artifact atomically while in-flight
// requests finish on the generation they started with.
//
// The JSON API:
//
//	POST /v1/associate     {"posts":[…]}            batch Step 6 association
//	POST /v1/match         {"hash":"…"}             single-hash lookup (micro-batched)
//	POST /v1/match/image   raw image bytes          pHash (Step 1) + lookup
//	POST /v1/influence     {"group":"…"}            live §5 Hawkes influence matrices
//	GET  /v1/report                                 full memereport document over the live engine
//	POST /v1/ingest        {"posts":[…]}            absorb new posts (streaming ingest)
//	GET  /v1/healthz                                liveness + resident artifact shape
//	GET  /v1/readyz                                 readiness (engine resident ∧ journal writable)
//	GET  /v1/statsz                                 request/batch/build/ingest/overload counters
//	GET  /v1/metrics                                Prometheus text-format exposition
//	GET  /v1/clusters                               the annotated-cluster artifact
//	POST /v1/admin/reload                           hot-swap a fresh snapshot
//
// Request/response shapes live in wire.go — the de-facto API spec. Every
// served association and match decision can additionally be streamed to a
// decision log (Config.DecisionLog, internal/declog) for offline replay
// through cmd/memereport.
//
// Concurrent /v1/match lookups are coalesced by a micro-batcher into single
// Engine.Associate fan-outs bounded by the engine's worker pool; see
// batcher.go.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"image"
	_ "image/gif" // register the stdlib decoders for /v1/match/image
	_ "image/jpeg"
	_ "image/png"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/cli"
	"github.com/memes-pipeline/memes/internal/declog"
	"github.com/memes-pipeline/memes/internal/phash"
)

// DefaultMaxBatch bounds how many concurrent /v1/match lookups one
// Associate fan-out may coalesce.
const DefaultMaxBatch = 256

// DefaultMaxBodyBytes bounds request bodies (associate batches, images).
const DefaultMaxBodyBytes = 32 << 20

// DefaultMaxInFlight bounds concurrently admitted requests; excess load is
// shed with 503 + Retry-After instead of queueing without bound.
const DefaultMaxInFlight = 1024

// DefaultRequestTimeout is the per-request deadline the serving middleware
// applies to query and ingest handlers.
const DefaultRequestTimeout = 30 * time.Second

// Config configures New.
type Config struct {
	// Loader produces the serving engine; it is called once by New and
	// again on every Reload, so it must be safe to call repeatedly
	// (typically: reopen the snapshot file and memes.LoadEngine it).
	Loader func() (*memes.Engine, error)
	// MaxBatch bounds the micro-batcher's coalescing window; 0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxBodyBytes bounds request bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Ingest, when set, enables the streaming ingest path: it receives the
	// server's hot engine handle and returns the Ingestor POST /v1/ingest
	// feeds (typically memes.NewIngestor over the serving corpus). Nil
	// disables the endpoint (503).
	Ingest func(*memes.HotEngine) (*memes.Ingestor, error)
	// MaxInFlight bounds concurrently admitted requests (health and stats
	// endpoints are exempt); 0 means DefaultMaxInFlight, negative disables
	// admission control.
	MaxInFlight int
	// RequestTimeout is the deadline applied to each query/ingest request's
	// context; 0 means DefaultRequestTimeout, negative disables it.
	RequestTimeout time.Duration
	// DecisionLog, when set, receives one declog.Decision per served
	// association and match lookup — the replayable traffic stream. The
	// caller owns the logger's lifecycle (the server never closes it; close
	// it after the http.Server has drained).
	DecisionLog *declog.Logger
	// DisableMetrics unregisters GET /v1/metrics (the latency histograms
	// still record; only the scrape endpoint disappears).
	DisableMetrics bool
}

// Server serves a resident engine over HTTP. Construct with New, expose
// with Handler, hot-swap with Reload, stop with Close.
type Server struct {
	hot      *memes.HotEngine
	loader   func() (*memes.Engine, error)
	ingestor *memes.Ingestor // nil when ingest is disabled
	batch    *batcher
	stats    counters
	started  time.Time
	loadedAt atomic.Value // time.Time of the last successful (re)load
	reloadMu sync.Mutex   // serialises Reload; queries never take it
	maxBody  int64

	sem        chan struct{} // admission slots; nil disables admission control
	reqTimeout time.Duration // per-request deadline; <= 0 disables
	closed     atomic.Bool   // Close ran; readiness is permanently false

	declog    *declog.Logger // decision stream; nil disables capture
	obs       observability  // per-endpoint latency histograms for /v1/metrics
	noMetrics bool           // GET /v1/metrics unregistered

	reportMu  sync.Mutex // guards the per-generation report cache
	reportGen uint64
	reportDoc *reportResponse
}

// New calls cfg.Loader once and returns a Server serving the result.
func New(cfg Config) (*Server, error) {
	if cfg.Loader == nil {
		return nil, errors.New("server: Config.Loader is required")
	}
	eng, err := cfg.Loader()
	if err != nil {
		return nil, fmt.Errorf("server: initial engine load: %w", err)
	}
	maxBatch := cfg.MaxBatch
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	maxBody := cfg.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	maxInFlight := cfg.MaxInFlight
	if maxInFlight == 0 {
		maxInFlight = DefaultMaxInFlight
	}
	reqTimeout := cfg.RequestTimeout
	if reqTimeout == 0 {
		reqTimeout = DefaultRequestTimeout
	}
	s := &Server{
		hot:        memes.NewHotEngine(eng),
		loader:     cfg.Loader,
		started:    time.Now(),
		maxBody:    maxBody,
		reqTimeout: reqTimeout,
		declog:     cfg.DecisionLog,
		noMetrics:  cfg.DisableMetrics,
	}
	s.obs.init()
	if maxInFlight > 0 {
		s.sem = make(chan struct{}, maxInFlight)
	}
	s.loadedAt.Store(time.Now())
	s.batch = newBatcher(s.hot, maxBatch, &s.stats)
	if cfg.Ingest != nil {
		ing, err := cfg.Ingest(s.hot)
		if err != nil {
			s.batch.Close()
			return nil, fmt.Errorf("server: ingest setup: %w", err)
		}
		s.ingestor = ing
	}
	return s, nil
}

// Ingestor returns the streaming ingest handle, or nil when ingest is
// disabled. Callers use it for startup journal replay (Replay) and for
// direct library-level ingestion.
func (s *Server) Ingestor() *memes.Ingestor { return s.ingestor }

// Engine pins the currently served engine generation.
func (s *Server) Engine() *memes.Engine { return s.hot.Engine() }

// Generation returns the hot-swap generation (1 after New, +1 per Reload).
func (s *Server) Generation() uint64 { return s.hot.Generation() }

// Reload runs the loader and atomically swaps the fresh engine in. Requests
// in flight finish on the generation they pinned; no request is dropped or
// blocked. Reloads are serialised; a failed load leaves the old engine
// serving.
func (s *Server) Reload() (ReloadStatus, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	start := time.Now()
	eng, err := s.loader()
	if err != nil {
		return ReloadStatus{}, fmt.Errorf("server: reload: %w", err)
	}
	s.hot.Swap(eng)
	s.loadedAt.Store(time.Now())
	s.stats.reloads.Add(1)
	d := time.Since(start)
	return ReloadStatus{
		Generation: s.hot.Generation(),
		Clusters:   len(eng.Clusters()),
		Duration:   d,
		LoadMS:     float64(d) / float64(time.Millisecond),
	}, nil
}

// Close stops the ingestor (waiting out any in-flight re-cluster and
// sealing the journal) and the micro-batcher. The Server must not serve
// requests after Close; shut the http.Server down first (connection
// draining), then Close. Idempotent: only the first call tears down.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	if s.ingestor != nil {
		s.ingestor.Close()
	}
	s.batch.Close()
}

// Handler returns the server's HTTP handler. Method routing relies on the
// stdlib mux, so wrong-method requests get 405 with an Allow header. The mux
// sits behind the hardening middleware — innermost to outermost: per-request
// deadline, bounded-in-flight admission control, panic recovery — so an
// overloaded, slow, or crashing handler degrades to clean error responses
// instead of taking the process down. Health, readiness, and stats endpoints
// bypass the deadline and admission layers: an operator must be able to
// observe an overloaded node.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/associate", s.handleAssociate)
	mux.HandleFunc("POST /v1/match", s.handleMatch)
	mux.HandleFunc("POST /v1/match/image", s.handleMatchImage)
	mux.HandleFunc("POST /v1/influence", s.handleInfluence)
	mux.HandleFunc("GET /v1/report", s.handleReport)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/statsz", s.handleStatsz)
	if !s.noMetrics {
		mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	}
	mux.HandleFunc("GET /v1/clusters", s.handleClusters)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	return s.withRecovery(s.withAdmission(s.withDeadline(s.withObservation(mux))))
}

// observabilityExempt reports whether the path must stay reachable on an
// overloaded or degraded node.
func observabilityExempt(path string) bool {
	switch path {
	case "/v1/healthz", "/v1/readyz", "/v1/statsz", "/v1/metrics":
		return true
	}
	return false
}

// withDeadline bounds each request's context so one slow query (a huge
// associate batch, a stalled client) cannot hold a worker forever. Reload is
// exempt besides the observability endpoints: swapping a large snapshot in
// legitimately outlives a query deadline.
func (s *Server) withDeadline(next http.Handler) http.Handler {
	if s.reqTimeout <= 0 {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if observabilityExempt(r.URL.Path) || r.URL.Path == "/v1/admin/reload" {
			next.ServeHTTP(w, r)
			return
		}
		ctx, cancel := context.WithTimeout(r.Context(), s.reqTimeout)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// withAdmission bounds the number of concurrently served requests; load
// beyond the bound is shed immediately with 503 + Retry-After rather than
// queued, so latency stays flat and the node signals overload while it still
// can.
func (s *Server) withAdmission(next http.Handler) http.Handler {
	if s.sem == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if observabilityExempt(r.URL.Path) {
			next.ServeHTTP(w, r)
			return
		}
		select {
		case s.sem <- struct{}{}:
		default:
			s.stats.shed.Add(1)
			s.writeError(w, http.StatusServiceUnavailable, reasonOverloaded, "server at max in-flight requests")
			return
		}
		defer func() { <-s.sem }()
		next.ServeHTTP(w, r)
	})
}

// withRecovery is the outermost layer: a panicking handler is contained,
// counted, and answered with a 500 — the process and every other in-flight
// request survive. http.ErrAbortHandler is re-raised: it is the sanctioned
// way to abort a response, not a crash.
func (s *Server) withRecovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.stats.panics.Add(1)
			if !tw.wrote {
				s.writeError(tw, http.StatusInternalServerError, reasonPanic, fmt.Sprintf("handler panicked: %v", rec))
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter records whether a response has started, so the recovery
// layer knows if a 500 can still be written.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(b []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(b)
}

// --- responses ---------------------------------------------------------------

// The wire shapes (request/response DTOs, error reasons) live in wire.go;
// writeJSON and writeError below are the only two ways a handler puts a
// body on the wire, so the envelope stays uniform (the jsonwire analyzer
// enforces this).

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	if code >= 400 {
		s.stats.errors.Add(1)
	}
	if code == http.StatusServiceUnavailable {
		// Every 503 is retryable by construction (shed load, degraded
		// journal, closing server); say so explicitly for clients and
		// proxies that honour Retry-After.
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, reason, msg string) {
	s.writeJSON(w, code, errorResponse{Error: msg, Reason: reason})
}

// writeQueryError maps a query-path failure to its transport shape: expired
// deadlines become 504, caller cancellations and server shutdown become 503,
// anything else is a 500.
func (s *Server) writeQueryError(w http.ResponseWriter, prefix string, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.stats.timeouts.Add(1)
		s.writeError(w, http.StatusGatewayTimeout, reasonDeadline, prefix+": "+err.Error())
	case errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusServiceUnavailable, reasonCanceled, prefix+": "+err.Error())
	case errors.Is(err, errBatcherClosed):
		s.writeError(w, http.StatusServiceUnavailable, reasonClosed, prefix+": "+err.Error())
	default:
		s.writeError(w, http.StatusInternalServerError, reasonInternal, prefix+": "+err.Error())
	}
}

// --- handlers ----------------------------------------------------------------

func (s *Server) handleAssociate(w http.ResponseWriter, r *http.Request) {
	s.stats.associateRequests.Add(1)
	var req associateRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "decoding request: "+err.Error())
		return
	}
	eng, gen := s.hot.Pin()
	assocs, err := eng.Associate(r.Context(), req.Posts)
	if err != nil {
		s.writeQueryError(w, "associate", err)
		return
	}
	s.stats.associatedPosts.Add(int64(len(req.Posts)))
	s.stats.associations.Add(int64(len(assocs)))
	s.logAssociateDecisions(gen, eng, req.Posts, assocs)
	resp := associateResponse{
		Posts:        len(req.Posts),
		Matched:      len(assocs),
		Generation:   gen,
		Associations: make([]associationJSON, 0, len(assocs)),
	}
	clusters := eng.Clusters()
	for _, a := range assocs {
		resp.Associations = append(resp.Associations, associationJSON{
			PostIndex: a.PostIndex,
			ClusterID: a.ClusterID,
			Distance:  a.Distance,
			Entry:     clusters[a.ClusterID].EntryName(),
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	s.stats.matchRequests.Add(1)
	var req matchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "decoding request: "+err.Error())
		return
	}
	h, err := parseHash(req.Hash)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
		return
	}
	s.answerMatch(w, r, h)
}

func (s *Server) handleMatchImage(w http.ResponseWriter, r *http.Request) {
	s.stats.matchImageRequests.Add(1)
	img, _, err := image.Decode(http.MaxBytesReader(w, r.Body, s.maxBody))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "decoding image: "+err.Error())
		return
	}
	// Step 1 on the serve path: the pooled zero-alloc pHash.
	h, err := memes.HashImage(img)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "hashing image: "+err.Error())
		return
	}
	s.answerMatch(w, r, h)
}

// answerMatch funnels both match endpoints through the micro-batcher and
// renders the lookup against the engine generation that answered it.
func (s *Server) answerMatch(w http.ResponseWriter, r *http.Request, h memes.Hash) {
	out := s.batch.Match(r.Context(), h)
	if out.err != nil {
		s.writeQueryError(w, "match", out.err)
		return
	}
	resp := matchResponse{
		Matched:    out.ok,
		ClusterID:  -1,
		Distance:   -1,
		Hash:       h.String(), // canonical 16-digit lowercase hex
		Generation: out.gen,    // the generation that actually answered
	}
	if out.ok {
		s.stats.matched.Add(1)
		ci := &out.eng.Clusters()[out.m.ClusterID]
		resp.ClusterID = out.m.ClusterID
		resp.Distance = out.m.Distance
		resp.Entry = ci.EntryName()
		resp.Community = ci.Community.String()
	} else {
		s.stats.missed.Add(1)
	}
	s.logMatchDecision(h, resp)
	s.writeJSON(w, http.StatusOK, resp)
}

// handleIngest feeds a batch of posts to the streaming Ingestor. The receipt
// tells the client how far each post got: assigned posts matched a resident
// annotated medoid and are servable now; pending posts wait in the pool for
// the next threshold-triggered re-cluster.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	s.stats.ingestRequests.Add(1)
	if s.ingestor == nil {
		s.writeError(w, http.StatusServiceUnavailable, reasonIngestDisabled, "ingest disabled: start the server with an ingest configuration")
		return
	}
	var req ingestRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "decoding request: "+err.Error())
		return
	}
	rec, err := s.ingestor.Ingest(r.Context(), req.Posts)
	if err != nil {
		switch {
		case errors.Is(err, memes.ErrIngestPoolFull):
			s.writeError(w, http.StatusServiceUnavailable, reasonPoolFull, "ingest: "+err.Error())
		case errors.Is(err, memes.ErrIngestJournalDegraded):
			s.writeError(w, http.StatusServiceUnavailable, reasonJournalDegraded, "ingest: "+err.Error())
		case errors.Is(err, memes.ErrIngestorClosed):
			s.writeError(w, http.StatusServiceUnavailable, reasonClosed, "ingest: "+err.Error())
		case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
			s.writeQueryError(w, "ingest", err)
		default:
			s.writeError(w, http.StatusBadRequest, reasonBadRequest, "ingest: "+err.Error())
		}
		return
	}
	s.writeJSON(w, http.StatusOK, ingestResponse{
		Accepted:   rec.Accepted,
		Assigned:   rec.Assigned,
		Pending:    rec.Pending,
		Triggered:  rec.Triggered,
		Seq:        rec.Seq,
		Generation: s.hot.Generation(),
	})
}

// handleReadyz answers readiness, as distinct from handleHealthz's liveness:
// healthz says the process is up and holding an engine; readyz says this
// node should receive traffic. A node serving read-only because its journal
// degraded is alive but not ready — a fleet's front door drains it while
// queries in flight still complete.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	_, gen := s.hot.Pin()
	reason := ""
	switch {
	case s.closed.Load():
		reason = reasonClosed
	case s.ingestor != nil && s.ingestor.Degraded():
		reason = reasonJournalDegraded
	}
	if reason != "" {
		s.writeJSON(w, http.StatusServiceUnavailable, readyResponse{Ready: false, Reason: reason, Generation: gen})
		return
	}
	s.writeJSON(w, http.StatusOK, readyResponse{Ready: true, Generation: gen})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	eng, gen := s.hot.Pin()
	s.writeJSON(w, http.StatusOK, healthResponse{
		Status:            "ok",
		Generation:        gen,
		Clusters:          len(eng.Clusters()),
		AnnotatedClusters: annotatedCount(eng),
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	eng, gen := s.hot.Pin()
	doc := StatsDoc{
		UptimeMS:          float64(time.Since(s.started)) / float64(time.Millisecond),
		Generation:        gen,
		LoadedAt:          s.loadedAt.Load().(time.Time).UTC().Format(time.RFC3339Nano),
		Clusters:          len(eng.Clusters()),
		AnnotatedClusters: annotatedCount(eng),
		Reloads:           s.stats.reloads.Load(),
		Requests: RequestStats{
			Associate:  s.stats.associateRequests.Load(),
			Match:      s.stats.matchRequests.Load(),
			MatchImage: s.stats.matchImageRequests.Load(),
			Ingest:     s.stats.ingestRequests.Load(),
			Reload:     s.stats.reloadRequests.Load(),
			Influence:  s.stats.influenceRequests.Load(),
			Report:     s.stats.reportRequests.Load(),
			Metrics:    s.stats.metricsRequests.Load(),
			Errors:     s.stats.errors.Load(),
		},
		Match: MatchStats{
			Matched: s.stats.matched.Load(),
			Missed:  s.stats.missed.Load(),
		},
		Associate: AssocStats{
			Posts:        s.stats.associatedPosts.Load(),
			Associations: s.stats.associations.Load(),
		},
		Batcher: BatcherStats{
			Batches:         s.stats.batches.Load(),
			BatchedRequests: s.stats.batchedRequests.Load(),
			LargestBatch:    s.stats.largestBatch.Load(),
			MaxBatch:        s.batch.maxBatch,
		},
		Overload: OverloadStats{
			Shed:        s.stats.shed.Load(),
			Timeouts:    s.stats.timeouts.Load(),
			Panics:      s.stats.panics.Load(),
			InFlight:    len(s.sem),
			MaxInFlight: cap(s.sem),
		},
		BuildStats: cli.StatsDoc(eng.BuildStats()),
	}
	if s.declog != nil {
		st := s.declog.Stats()
		doc.DecisionLog = DecLogStats{
			Enabled:       true,
			Logged:        st.Logged,
			Dropped:       st.Dropped,
			Batches:       st.Batches,
			Flushed:       st.Flushed,
			FlushFailures: st.FlushFailures,
			Buffered:      st.Buffered,
		}
	}
	if s.ingestor != nil {
		st := s.ingestor.Stats()
		doc.Ingest = IngestStats{
			Enabled:           true,
			Ingested:          st.Ingested,
			Assigned:          st.Assigned,
			Rejected:          st.Rejected,
			Pending:           st.Pending,
			Pool:              st.Pool,
			Reclusters:        st.Reclusters,
			ReclusterFailures: st.ReclusterFailures,
			Compactions:       st.Compactions,
			DeltaSegments:     st.DeltaSegments,
			Seq:               st.Seq,
			JournalRetries:    st.JournalRetries,
			JournalFailures:   st.JournalFailures,
			TornTails:         st.TornTails,
			Degraded:          st.Degraded,
		}
		doc.Degraded = st.Degraded
	}
	s.writeJSON(w, http.StatusOK, doc)
}

func (s *Server) handleClusters(w http.ResponseWriter, r *http.Request) {
	eng, gen := s.hot.Pin()
	clusters := eng.Clusters()
	resp := clustersResponse{Generation: gen, Clusters: make([]clusterJSON, 0, len(clusters))}
	for i := range clusters {
		ci := &clusters[i]
		resp.Clusters = append(resp.Clusters, clusterJSON{
			ID:             ci.ID,
			Community:      ci.Community.String(),
			Entry:          ci.EntryName(),
			Images:         ci.Images,
			DistinctHashes: ci.DistinctHashes,
			MedoidHash:     ci.MedoidHash.String(),
			Annotated:      ci.Annotated(),
			Racist:         ci.Racist,
			Political:      ci.Political,
		})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	s.stats.reloadRequests.Add(1)
	st, err := s.Reload()
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, reasonReloadFailed, err.Error())
		return
	}
	s.writeJSON(w, http.StatusOK, st)
}

// --- helpers -----------------------------------------------------------------

// annotatedCount counts the clusters the Step 6 index actually serves.
func annotatedCount(eng *memes.Engine) int {
	n := 0
	clusters := eng.Clusters()
	for i := range clusters {
		if clusters[i].Annotated() {
			n++
		}
	}
	return n
}

// parseHash accepts the two wire forms of a perceptual hash: a JSON string
// in the canonical hexadecimal form (optionally 0x-prefixed — what
// /v1/clusters and /v1/match emit, immune to float mangling in
// non-64-bit-integer JSON clients), or a bare JSON integer (the decimal
// form posts.jsonl stores). Quoting selects the base: strings are always
// hex (delegated to phash.Parse, which also caps the length at 16 digits,
// so a stringified 17+-digit decimal fails loudly instead of silently
// parsing as a different hash), bare integers always decimal.
func parseHash(raw json.RawMessage) (memes.Hash, error) {
	t := strings.TrimSpace(string(raw))
	if t == "" || t == "null" {
		return 0, errors.New(`missing "hash" field`)
	}
	if strings.HasPrefix(t, `"`) {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return 0, fmt.Errorf("invalid hash string: %v", err)
		}
		h, err := phash.Parse(strings.TrimPrefix(strings.TrimSpace(s), "0x"))
		if err != nil {
			return 0, fmt.Errorf("invalid hex hash %q: %v", s, err)
		}
		return h, nil
	}
	v, err := strconv.ParseUint(t, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid hash %q: want a hex string or an unsigned integer", t)
	}
	return memes.Hash(v), nil
}
