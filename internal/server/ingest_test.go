package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/dataset"
	"github.com/memes-pipeline/memes/internal/phash"
)

// plantServerNovelEntry appends a synthetic KYM entry whose gallery hash is
// far from every hash in the corpus, so posts carrying it can only become
// servable through an ingest-triggered re-cluster (never by matching a
// resident medoid). Same shape as the internal/ingest and root-package tests.
func plantServerNovelEntry(t *testing.T, ds *memes.Dataset) memes.Hash {
	t.Helper()
	var existing []memes.Hash
	for i := range ds.Posts {
		if ds.Posts[i].HasImage {
			existing = append(existing, ds.Posts[i].PHash())
		}
	}
	for _, e := range ds.KYMEntries {
		for _, g := range e.Gallery {
			existing = append(existing, memes.Hash(g))
		}
	}
	for k := uint64(1); k < 1<<20; k++ {
		h := memes.Hash(k * 0x9E3779B97F4A7C15)
		far := true
		for _, x := range existing {
			if phash.Distance(h, x) <= 16 {
				far = false
				break
			}
		}
		if far {
			ds.KYMEntries = append(ds.KYMEntries, dataset.KYMEntry{
				Name:            "synthetic-novel-meme",
				Title:           "Synthetic Novel Meme",
				Category:        "memes",
				Gallery:         []uint64{uint64(h)},
				ScreenshotFlags: []bool{false},
			})
			return h
		}
	}
	t.Fatal("no hash is far from the whole corpus")
	return 0
}

// newIngestEnv is newTestEnv with the streaming ingest path enabled and a
// novel annotated entry planted in the corpus; it returns the planted hash.
func newIngestEnv(t *testing.T, cfg memes.IngestConfig) (*testEnv, memes.Hash) {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	novel := plantServerNovelEntry(t, ds)
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(t.Context(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	snap := filepath.Join(t.TempDir(), "engine.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := eng.Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	loader := func() (*memes.Engine, error) {
		r, err := os.Open(snap)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return memes.LoadEngine(r, site)
	}
	srv, err := New(Config{
		Loader: loader,
		Ingest: func(hot *memes.HotEngine) (*memes.Ingestor, error) {
			return memes.NewIngestor(hot, ds, site, cfg)
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &testEnv{ds: ds, eng: eng, srv: srv, ts: ts}, novel
}

// ingestBody marshals an ingest request.
func ingestBody(t *testing.T, posts []memes.Post) []byte {
	t.Helper()
	body, err := json.Marshal(struct {
		Posts []memes.Post `json:"posts"`
	}{Posts: posts})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	return body
}

// novelPosts builds n fringe image posts carrying the planted hash.
func novelPosts(novel memes.Hash, n int) []memes.Post {
	posts := make([]memes.Post, n)
	for i := range posts {
		posts[i] = memes.Post{
			ID:        9_000_000 + int64(i),
			Community: dataset.Pol,
			Timestamp: time.Unix(0, 0).UTC(),
			HasImage:  true,
			Hash:      uint64(novel),
			TruthMeme: -1,
			TruthRoot: -1,
		}
	}
	return posts
}

// residentMedoid picks an annotated medoid of the base build — a hash that
// must stay servable through every ingest-triggered swap.
func residentMedoid(t *testing.T, eng *memes.Engine) memes.Hash {
	t.Helper()
	clusters := eng.Clusters()
	for i := range clusters {
		if clusters[i].Annotated() {
			return clusters[i].MedoidHash
		}
	}
	t.Fatal("base build has no annotated cluster")
	return 0
}

// TestIngestDisabled pins the degraded mode: without an ingest configuration
// the endpoint answers 503 and statsz reports the subsystem disabled.
func TestIngestDisabled(t *testing.T) {
	e := newTestEnv(t)
	code, raw := e.do(t, http.MethodPost, "/v1/ingest", []byte(`{"posts":[]}`), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("ingest status = %d, want 503: %s", code, raw)
	}
	if !strings.Contains(string(raw), "ingest disabled") {
		t.Fatalf("ingest error = %s, want a disabled notice", raw)
	}
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz status = %d", code)
	}
	if stats.Ingest.Enabled {
		t.Error("statsz reports ingest enabled on a server without an Ingestor")
	}
	if stats.Requests.Ingest != 1 {
		t.Errorf("statsz requests.ingest = %d, want 1", stats.Requests.Ingest)
	}
}

// TestIngestReceiptAndStats drives the endpoint below the trigger threshold
// and cross-checks every receipt field and the statsz ingest document.
func TestIngestReceiptAndStats(t *testing.T) {
	e, novel := newIngestEnv(t, memes.IngestConfig{Threshold: 1 << 20})
	resident := residentMedoid(t, e.eng)

	// A post matching a resident annotated medoid is assigned immediately.
	assigned := []memes.Post{{
		ID:        8_000_000,
		Community: dataset.Pol,
		Timestamp: time.Unix(0, 0).UTC(),
		HasImage:  true,
		Hash:      uint64(resident),
		TruthMeme: -1,
		TruthRoot: -1,
	}}
	var rec ingestResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, assigned), &rec); code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", code, raw)
	}
	if rec.Accepted != 1 || rec.Assigned != 1 || rec.Pending != 0 || rec.Triggered || rec.Seq != 1 {
		t.Fatalf("assigned receipt = %+v", rec)
	}
	if rec.Generation != 1 {
		t.Fatalf("generation = %d, want 1 (no swap below threshold)", rec.Generation)
	}

	// Novel posts park in the pending pool.
	if code, raw := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, novelPosts(novel, 2)), &rec); code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", code, raw)
	}
	if rec.Accepted != 2 || rec.Assigned != 0 || rec.Pending != 2 || rec.Triggered || rec.Seq != 3 {
		t.Fatalf("pending receipt = %+v", rec)
	}

	// Malformed body and invalid community are client errors.
	if code, _ := e.do(t, http.MethodPost, "/v1/ingest", []byte(`{"posts":`), nil); code != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d, want 400", code)
	}
	bad := novelPosts(novel, 1)
	bad[0].Community = dataset.Community(99)
	if code, _ := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, bad), nil); code != http.StatusBadRequest {
		t.Fatalf("invalid community status = %d, want 400", code)
	}

	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz status = %d", code)
	}
	want := IngestStats{Enabled: true, Ingested: 3, Assigned: 1, Pending: 2, Pool: 3, Seq: 3}
	if stats.Ingest != want {
		t.Errorf("statsz ingest = %+v, want %+v", stats.Ingest, want)
	}
	if stats.Requests.Ingest != 4 {
		t.Errorf("statsz requests.ingest = %d, want 4", stats.Requests.Ingest)
	}
}

// TestIngestBackpressure pins the pool-full signal at the HTTP layer.
func TestIngestBackpressure(t *testing.T) {
	e, novel := newIngestEnv(t, memes.IngestConfig{Threshold: 1 << 20, MaxPending: 2})
	code, raw := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, novelPosts(novel, 3)), nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("overflow status = %d, want 503: %s", code, raw)
	}
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz status = %d", code)
	}
	if stats.Ingest.Rejected != 3 || stats.Ingest.Seq != 0 || stats.Ingest.Pending != 0 {
		t.Fatalf("statsz ingest = %+v, want 3 rejected and nothing accepted", stats.Ingest)
	}
}

// TestIngestHotSwapZeroDrops is the serving-layer acceptance test: posts
// POSTed to /v1/ingest cross the threshold, the background re-cluster swaps a
// fresh engine in, the novel hash becomes matchable without a restart — and
// concurrent /v1/match traffic on a resident medoid never sees a single
// failed or missed request while that happens.
func TestIngestHotSwapZeroDrops(t *testing.T) {
	e, novel := newIngestEnv(t, memes.IngestConfig{Threshold: 5})
	resident := residentMedoid(t, e.eng)

	var m matchResponse
	if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(novel), &m); code != http.StatusOK || m.Matched {
		t.Fatalf("novel hash before ingest: code=%d matched=%v", code, m.Matched)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var requests, failures atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var m matchResponse
				code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(resident), &m)
				requests.Add(1)
				if code != http.StatusOK || !m.Matched {
					failures.Add(1)
				}
			}
		}()
	}

	var rec ingestResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, novelPosts(novel, 5)), &rec); code != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", code, raw)
	}
	if !rec.Triggered || rec.Pending != 5 {
		t.Fatalf("receipt = %+v, want a triggered re-cluster of 5 pending posts", rec)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		var m matchResponse
		if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(novel), &m); code == http.StatusOK && m.Matched {
			if m.Entry != "synthetic-novel-meme" {
				t.Errorf("novel match entry = %q, want the planted entry", m.Entry)
			}
			break
		}
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatalf("novel hash never became servable; statsz ingest: %+v", e.srv.Ingestor().Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Keep hammering past the swap until the assertion has real volume.
	for requests.Load() < 300 {
		if time.Now().After(deadline) {
			close(stop)
			wg.Wait()
			t.Fatal("hammer never accumulated volume")
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Errorf("%d of %d concurrent requests failed during the ingest-triggered swap", n, requests.Load())
	}

	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz status = %d", code)
	}
	if !stats.Ingest.Enabled || stats.Ingest.Reclusters < 1 || stats.Ingest.Pending != 0 {
		t.Errorf("statsz ingest = %+v, want >=1 re-cluster and an empty pending pool", stats.Ingest)
	}
	if stats.Generation < 2 {
		t.Errorf("generation = %d, want a swap", stats.Generation)
	}
	if stats.Requests.Errors != 0 {
		t.Errorf("statsz errors = %d, want 0", stats.Requests.Errors)
	}
}
