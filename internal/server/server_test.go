package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"image/png"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/imaging"
)

// testEnv is one served snapshot: the reference engine the snapshot was
// built from, the Server loading it, and an httptest front.
type testEnv struct {
	ds  *memes.Dataset
	eng *memes.Engine // the original build, for reference answers
	srv *Server
	ts  *httptest.Server

	// failLoads makes the loader error on its next calls — the lever the
	// reload-failure tests pull.
	failLoads atomic.Bool
}

func newTestEnv(t *testing.T) *testEnv { return newTestEnvCfg(t, nil) }

// newTestEnvCfg is newTestEnv with a hook to adjust the server Config (set
// MaxInFlight, RequestTimeout, …) before New runs.
func newTestEnvCfg(t *testing.T, mut func(*Config)) *testEnv {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(t.Context(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	snap := filepath.Join(t.TempDir(), "engine.snap")
	f, err := os.Create(snap)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if err := eng.Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	env := &testEnv{ds: ds, eng: eng}
	loader := func() (*memes.Engine, error) {
		if env.failLoads.Load() {
			return nil, errors.New("injected loader failure")
		}
		r, err := os.Open(snap)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		return memes.LoadEngine(r, site)
	}
	cfg := Config{Loader: loader}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	env.srv, env.ts = srv, ts
	return env
}

// do issues one request and decodes the JSON response into out (if non-nil),
// returning the status code and raw body.
func (e *testEnv) do(t *testing.T, method, path string, body []byte, out any) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, e.ts.URL+path, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest %s %s: %v", method, path, err)
	}
	resp, err := e.ts.Client().Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// farHash returns a hash no annotated medoid lies within the association
// threshold of, so /v1/match on it must miss.
func farHash(t *testing.T, eng *memes.Engine) memes.Hash {
	t.Helper()
	theta := memes.DefaultPipelineConfig().AssociationThreshold
	clusters := eng.Clusters()
	for v := uint64(0); v < 1<<20; v++ {
		h := memes.Hash(v)
		far := true
		for i := range clusters {
			if clusters[i].Annotated() && memes.HashDistance(h, clusters[i].MedoidHash) <= theta {
				far = false
				break
			}
		}
		if far {
			return h
		}
	}
	t.Fatal("no far hash found in 2^20 candidates")
	return 0
}

func TestHealthzAndClusters(t *testing.T) {
	e := newTestEnv(t)
	var health healthResponse
	if code, _ := e.do(t, http.MethodGet, "/v1/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthz status = %d", code)
	}
	if health.Status != "ok" || health.Generation != 1 {
		t.Fatalf("healthz = %+v", health)
	}
	if health.Clusters != len(e.eng.Clusters()) {
		t.Fatalf("healthz clusters = %d, want %d", health.Clusters, len(e.eng.Clusters()))
	}
	if health.AnnotatedClusters <= 0 || health.AnnotatedClusters > health.Clusters {
		t.Fatalf("healthz annotated_clusters = %d out of range", health.AnnotatedClusters)
	}

	var cl clustersResponse
	if code, _ := e.do(t, http.MethodGet, "/v1/clusters", nil, &cl); code != http.StatusOK {
		t.Fatalf("clusters status = %d", code)
	}
	if len(cl.Clusters) != len(e.eng.Clusters()) {
		t.Fatalf("clusters = %d, want %d", len(cl.Clusters), len(e.eng.Clusters()))
	}
	for i, c := range cl.Clusters {
		want := fmt.Sprintf("%016x", uint64(e.eng.Clusters()[i].MedoidHash))
		if c.MedoidHash != want {
			t.Fatalf("cluster %d medoid_hash = %q, want %q", i, c.MedoidHash, want)
		}
	}
}

// TestMatchAgainstEngine asserts every wire form of /v1/match answers
// exactly what Engine.Match answers for the same hash.
func TestMatchAgainstEngine(t *testing.T) {
	e := newTestEnv(t)
	clusters := e.eng.Clusters()
	for i := range clusters {
		h := clusters[i].MedoidHash
		wantM, wantOK, err := e.eng.Match(t.Context(), h)
		if err != nil {
			t.Fatalf("engine Match: %v", err)
		}
		for _, body := range []string{
			fmt.Sprintf(`{"hash":"%016x"}`, uint64(h)), // hex string
			fmt.Sprintf(`{"hash":"0x%x"}`, uint64(h)),  // 0x-prefixed
			fmt.Sprintf(`{"hash":%d}`, uint64(h)),      // bare integer
		} {
			var got matchResponse
			if code, raw := e.do(t, http.MethodPost, "/v1/match", []byte(body), &got); code != http.StatusOK {
				t.Fatalf("match %s: status %d: %s", body, code, raw)
			}
			if got.Matched != wantOK {
				t.Fatalf("match %s: matched = %v, want %v", body, got.Matched, wantOK)
			}
			if wantOK && (got.ClusterID != wantM.ClusterID || got.Distance != wantM.Distance) {
				t.Fatalf("match %s: (%d,%d), want (%d,%d)", body, got.ClusterID, got.Distance, wantM.ClusterID, wantM.Distance)
			}
			if wantOK && got.Entry != clusters[wantM.ClusterID].EntryName() {
				t.Fatalf("match %s: entry %q, want %q", body, got.Entry, clusters[wantM.ClusterID].EntryName())
			}
		}
	}

	var miss matchResponse
	body := fmt.Sprintf(`{"hash":"%016x"}`, uint64(farHash(t, e.eng)))
	if code, _ := e.do(t, http.MethodPost, "/v1/match", []byte(body), &miss); code != http.StatusOK {
		t.Fatalf("far match status = %d", code)
	}
	if miss.Matched || miss.ClusterID != -1 || miss.Distance != -1 {
		t.Fatalf("far hash matched: %+v", miss)
	}
}

// TestAssociateAgainstEngine asserts /v1/associate over the full corpus
// returns exactly Engine.Associate's output.
func TestAssociateAgainstEngine(t *testing.T) {
	e := newTestEnv(t)
	want, err := e.eng.Associate(t.Context(), e.ds.Posts)
	if err != nil {
		t.Fatalf("engine Associate: %v", err)
	}
	body, err := json.Marshal(struct {
		Posts []memes.Post `json:"posts"`
	}{Posts: e.ds.Posts})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var got associateResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/associate", body, &got); code != http.StatusOK {
		t.Fatalf("associate status = %d: %.200s", code, raw)
	}
	if got.Posts != len(e.ds.Posts) || got.Matched != len(want) || len(got.Associations) != len(want) {
		t.Fatalf("associate posts=%d matched=%d len=%d, want posts=%d matched=%d",
			got.Posts, got.Matched, len(got.Associations), len(e.ds.Posts), len(want))
	}
	clusters := e.eng.Clusters()
	for i, a := range got.Associations {
		w := want[i]
		if a.PostIndex != w.PostIndex || a.ClusterID != w.ClusterID || a.Distance != w.Distance {
			t.Fatalf("association %d = %+v, want %+v", i, a, w)
		}
		if a.Entry != clusters[w.ClusterID].EntryName() {
			t.Fatalf("association %d entry = %q, want %q", i, a.Entry, clusters[w.ClusterID].EntryName())
		}
	}
}

// TestMatchImage drives the raw-bytes endpoint through the Step 1 pHash
// path and cross-checks against Engine.MatchImage.
func TestMatchImage(t *testing.T) {
	e := newTestEnv(t)
	img := imaging.Template(1)
	wantM, wantOK, err := e.eng.MatchImage(t.Context(), img)
	if err != nil {
		t.Fatalf("engine MatchImage: %v", err)
	}
	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		t.Fatalf("png.Encode: %v", err)
	}
	var got matchResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/match/image", buf.Bytes(), &got); code != http.StatusOK {
		t.Fatalf("match/image status = %d: %s", code, raw)
	}
	if got.Matched != wantOK {
		t.Fatalf("match/image matched = %v, want %v", got.Matched, wantOK)
	}
	if wantOK && (got.ClusterID != wantM.ClusterID || got.Distance != wantM.Distance) {
		t.Fatalf("match/image = (%d,%d), want (%d,%d)", got.ClusterID, got.Distance, wantM.ClusterID, wantM.Distance)
	}
	wantHash, err := memes.HashImage(img)
	if err != nil {
		t.Fatalf("HashImage: %v", err)
	}
	if got.Hash != fmt.Sprintf("%016x", uint64(wantHash)) {
		t.Fatalf("match/image hash = %q, want %016x", got.Hash, uint64(wantHash))
	}
}

func TestBadRequests(t *testing.T) {
	e := newTestEnv(t)
	for _, tc := range []struct {
		method, path string
		body         string
		wantCode     int
	}{
		{http.MethodPost, "/v1/match", `{`, http.StatusBadRequest},
		{http.MethodPost, "/v1/match", `{}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/match", `{"hash":"xyz"}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/match", `{"hash":-1}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/match/image", "not an image", http.StatusBadRequest},
		{http.MethodPost, "/v1/associate", `{"posts":`, http.StatusBadRequest},
		{http.MethodGet, "/v1/match", "", http.StatusMethodNotAllowed},
		{http.MethodPost, "/v1/healthz", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/nope", "", http.StatusNotFound},
	} {
		var body []byte
		if tc.body != "" {
			body = []byte(tc.body)
		}
		if code, raw := e.do(t, tc.method, tc.path, body, nil); code != tc.wantCode {
			t.Errorf("%s %s %q: status %d, want %d (%s)", tc.method, tc.path, tc.body, code, tc.wantCode, raw)
		}
	}
}

// TestHotReloadZeroDroppedRequests is the PR's acceptance test: concurrent
// /v1/match and /v1/associate traffic runs while /v1/admin/reload swaps the
// snapshot in repeatedly; every request must succeed, and every result must
// be bitwise-identical to the pre-reload baseline.
func TestHotReloadZeroDroppedRequests(t *testing.T) {
	e := newTestEnv(t)

	// The query set: every cluster medoid, a guaranteed miss, and a slice
	// of real post hashes.
	var hashes []memes.Hash
	for _, c := range e.eng.Clusters() {
		hashes = append(hashes, c.MedoidHash)
	}
	hashes = append(hashes, farHash(t, e.eng))
	for i := 0; i < len(e.ds.Posts) && len(hashes) < 80; i++ {
		if e.ds.Posts[i].HasImage {
			hashes = append(hashes, e.ds.Posts[i].PHash())
		}
	}

	assocBody, err := json.Marshal(struct {
		Posts []memes.Post `json:"posts"`
	}{Posts: e.ds.Posts[:500]})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}

	// Baselines, taken before any reload. Generation is the one field that
	// legitimately changes across a swap; everything else must be bitwise
	// stable.
	matchBaseline := make(map[memes.Hash]matchResponse, len(hashes))
	for _, h := range hashes {
		var m matchResponse
		if code, raw := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &m); code != http.StatusOK {
			t.Fatalf("baseline match: status %d: %s", code, raw)
		}
		m.Generation = 0
		matchBaseline[h] = m
	}
	var assocBaseline associateResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/associate", assocBody, &assocBaseline); code != http.StatusOK {
		t.Fatalf("baseline associate: status %d: %s", code, raw)
	}
	assocBaseline.Generation = 0

	const (
		matchWorkers = 4
		assocWorkers = 2
		iters        = 8
		reloads      = 5
	)
	var wg sync.WaitGroup
	var failed sync.Map // description -> struct{}
	fail := func(format string, args ...any) {
		failed.Store(fmt.Sprintf(format, args...), struct{}{})
	}
	for w := 0; w < matchWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				for _, h := range hashes {
					var m matchResponse
					code, raw := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &m)
					if code != http.StatusOK {
						fail("match %016x: status %d: %s", uint64(h), code, raw)
						return
					}
					m.Generation = 0
					if m != matchBaseline[h] {
						fail("match %016x diverged during reload: %+v != %+v", uint64(h), m, matchBaseline[h])
						return
					}
				}
			}
		}()
	}
	for w := 0; w < assocWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				var a associateResponse
				code, raw := e.do(t, http.MethodPost, "/v1/associate", assocBody, &a)
				if code != http.StatusOK {
					fail("associate: status %d: %s", code, raw)
					return
				}
				a.Generation = 0
				if !reflect.DeepEqual(a, assocBaseline) {
					fail("associate diverged during reload")
					return
				}
			}
		}()
	}
	// The reloader runs concurrently with the traffic above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < reloads; i++ {
			var st ReloadStatus
			code, raw := e.do(t, http.MethodPost, "/v1/admin/reload", nil, &st)
			if code != http.StatusOK {
				fail("reload %d: status %d: %s", i, code, raw)
				return
			}
			if st.Clusters != len(e.eng.Clusters()) {
				fail("reload %d: %d clusters, want %d", i, st.Clusters, len(e.eng.Clusters()))
				return
			}
		}
	}()
	wg.Wait()
	failed.Range(func(k, _ any) bool {
		t.Error(k)
		return true
	})
	if t.Failed() {
		t.FailNow()
	}

	if g := e.srv.Generation(); g != 1+reloads {
		t.Fatalf("generation = %d after %d reloads, want %d", g, reloads, 1+reloads)
	}

	// And after the dust settles: results are still the baseline's.
	for _, h := range hashes {
		var m matchResponse
		if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &m); code != http.StatusOK {
			t.Fatalf("post-reload match: status %d", code)
		}
		m.Generation = 0
		if m != matchBaseline[h] {
			t.Fatalf("match %016x diverged after reloads: %+v != %+v", uint64(h), m, matchBaseline[h])
		}
	}

	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz status = %d", code)
	}
	if stats.Reloads != reloads {
		t.Fatalf("statsz reloads = %d, want %d", stats.Reloads, reloads)
	}
	if stats.Requests.Errors != 0 {
		t.Fatalf("statsz errors = %d, want 0", stats.Requests.Errors)
	}
	if stats.Batcher.Batches == 0 || stats.Batcher.BatchedRequests < stats.Batcher.Batches {
		t.Fatalf("statsz batcher = %+v, want batches > 0 and batched_requests >= batches", stats.Batcher)
	}
	if stats.Generation != uint64(1+reloads) {
		t.Fatalf("statsz generation = %d, want %d", stats.Generation, 1+reloads)
	}
}

func matchBody(h memes.Hash) []byte {
	return []byte(fmt.Sprintf(`{"hash":"%016x"}`, uint64(h)))
}
