package server

import (
	"context"
	"errors"
	"fmt"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/faults"
)

// errBatcherClosed is returned to lookups that race the server shutdown.
var errBatcherClosed = errors.New("server: batcher closed")

// batcher coalesces concurrent single-hash lookups into one
// Engine.AssociateAppend pass. /v1/match is the highest-rate endpoint of the
// serving layer, and answering each lookup with its own request/response
// round trip wastes channel hops; the batcher instead drains every lookup
// that is queued at the moment one arrives (up to maxBatch) and submits them
// as a single post batch answered from the engine's pooled query scratch, so
// the steady-state serving loop allocates nothing per batch. Under a single
// in-flight request the batch degenerates to size 1 and costs one channel
// hop — there is no timer and no added latency floor.
//
// Every batch pins one engine generation from the hot handle, so all lookups
// coalesced together are answered by the same artifact even while a hot
// reload swaps the engine underneath.
type batcher struct {
	hot      *memes.HotEngine
	reqs     chan *matchReq
	maxBatch int
	stats    *counters
	stop     chan struct{}
	done     chan struct{}

	// Dispatcher-owned scratch, reused across batches so the steady state
	// allocates nothing per batch (the noalloc invariant on run/flush).
	// Only the dispatcher goroutine touches these.
	batch  []*matchReq
	posts  []memes.Post
	outs   []matchOut
	assocs []memes.Association
}

// matchReq is one queued lookup; resp is buffered so the dispatcher never
// blocks on a caller that gave up (context cancellation). ctx lets the
// dispatcher drop a request whose caller's deadline expired while it sat in
// the queue instead of spending engine work on an answer nobody reads.
type matchReq struct {
	ctx  context.Context
	hash memes.Hash
	resp chan matchOut
}

// matchOut is the lookup answer plus the pinned (engine, generation) pair
// that produced it, so the handler resolves cluster metadata — and labels
// the response — against exactly the artifact that answered.
type matchOut struct {
	m   memes.Match
	ok  bool
	eng *memes.Engine
	gen uint64
	err error
}

// newBatcher starts the dispatcher goroutine; Close stops it.
func newBatcher(hot *memes.HotEngine, maxBatch int, stats *counters) *batcher {
	b := &batcher{
		hot:      hot,
		reqs:     make(chan *matchReq, maxBatch),
		maxBatch: maxBatch,
		stats:    stats,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		batch:    make([]*matchReq, 0, maxBatch),
		posts:    make([]memes.Post, 0, maxBatch),
		outs:     make([]matchOut, 0, maxBatch),
		assocs:   make([]memes.Association, 0, maxBatch),
	}
	//memes:goroutine dispatcher owned by Close: stop/done handshake joins it
	go b.run()
	return b
}

// Match queues one lookup and waits for its batch to be answered.
func (b *batcher) Match(ctx context.Context, h memes.Hash) matchOut {
	req := &matchReq{ctx: ctx, hash: h, resp: make(chan matchOut, 1)}
	select {
	case b.reqs <- req:
	case <-ctx.Done():
		return matchOut{err: ctx.Err()}
	case <-b.stop:
		return matchOut{err: errBatcherClosed}
	}
	select {
	case out := <-req.resp:
		return out
	case <-ctx.Done():
		return matchOut{err: ctx.Err()}
	case <-b.done:
		// The dispatcher has exited. Either it flushed this lookup on its
		// way out (the buffered response is already there) or it never
		// will; a final non-blocking read distinguishes the two, so no
		// caller is left waiting on a response that cannot come.
		select {
		case out := <-req.resp:
			return out
		default:
			return matchOut{err: errBatcherClosed}
		}
	}
}

// Close stops the dispatcher and waits for it to exit. Lookups still queued
// when it exits are answered with errBatcherClosed by Match's done-case;
// none can hang.
func (b *batcher) Close() {
	close(b.stop)
	<-b.done
}

// run is the dispatcher loop. Its steady state — drain, flush, repeat —
// reuses the batcher's preallocated scratch slices, so serving traffic does
// not allocate per batch.
//
//memes:noalloc
func (b *batcher) run() {
	defer close(b.done)
	for {
		select {
		case <-b.stop:
			return
		case first := <-b.reqs:
			b.batch = append(b.batch[:0], first)
		drain:
			for len(b.batch) < b.maxBatch {
				select {
				case r := <-b.reqs:
					b.batch = append(b.batch, r)
				default:
					break drain
				}
			}
			b.safeFlush()
		}
	}
}

// safeFlush guards the dispatcher goroutine against a panicking flush (a
// poisoned engine, an injected batcher.dispatch panic): the panic is
// contained, counted, and every queued caller gets an error instead of a
// hang — the process and the dispatcher both survive. Deliberately not
// annotated //memes:noalloc: the recovery path is off the steady state.
func (b *batcher) safeFlush() {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		b.stats.panics.Add(1)
		err := fmt.Errorf("server: match dispatch panicked: %v", r)
		for _, req := range b.batch {
			// Non-blocking: flush may have answered some requests before
			// panicking, and their one-slot buffers may still be full.
			select {
			case req.resp <- matchOut{err: err}:
			default:
			}
		}
	}()
	b.flush()
}

// flush answers the coalesced batch in b.batch with a single AssociateAppend
// pass against one pinned engine generation. Associate and Match share the
// same winner selection (nearest annotated medoid, ties to the lowest
// cluster ID), so a batched lookup is bitwise-identical to a direct
// Engine.Match. The post, association, and response buffers live on the
// batcher and are recycled across flushes — once warmed to maxBatch capacity
// the serving loop allocates nothing per batch; responses are copied into
// the per-request reply channels before the next flush reuses them.
//
//memes:noalloc
func (b *batcher) flush() {
	// Drop lookups whose caller's deadline expired while they queued: the
	// caller has already returned, so engine work on them is wasted. The
	// buffered reply is still sent so a caller racing the expiry never
	// hangs.
	kept := b.batch[:0]
	for _, req := range b.batch {
		if cerr := req.ctx.Err(); cerr != nil {
			req.resp <- matchOut{err: cerr}
			continue
		}
		kept = append(kept, req)
	}
	b.batch = kept
	if len(b.batch) == 0 {
		return
	}

	eng, gen := b.hot.Pin()
	b.posts = b.posts[:0]
	for _, req := range b.batch {
		b.posts = append(b.posts, memes.Post{HasImage: true, Hash: uint64(req.hash)})
	}
	err := faults.Inject("batcher.dispatch")
	if err == nil {
		b.assocs, err = eng.AssociateAppend(context.Background(), b.posts, b.assocs[:0])
	}
	if err != nil {
		for _, req := range b.batch {
			req.resp <- matchOut{err: err}
		}
		return
	}
	b.stats.observeBatch(len(b.batch))
	b.outs = b.outs[:0]
	for range b.batch {
		b.outs = append(b.outs, matchOut{eng: eng, gen: gen})
	}
	for _, a := range b.assocs {
		b.outs[a.PostIndex].m = memes.Match{ClusterID: a.ClusterID, Distance: a.Distance}
		b.outs[a.PostIndex].ok = true
	}
	for i, req := range b.batch {
		req.resp <- b.outs[i]
	}
}
