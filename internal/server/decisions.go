package server

import (
	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/declog"
)

// Decision capture: the serve path's bridge into the decision-log stream.
// Capture happens after a request is fully answered-to-be (the outcome is
// known) and costs one bounded-buffer append per decision — declog.Logger
// never blocks on its sink, so a slow collector cannot slow serving. The
// engine benchmarks' 0 allocs/op contract is untouched: capture lives in
// the HTTP handlers, which allocate for JSON anyway, never in the engine or
// the micro-batcher.

// logAssociateDecisions appends one decision per post of a served
// /v1/associate batch — matched or not, so a replay sees the same
// denominator the live request did. assocs must be sorted by PostIndex
// ascending, which Engine.Associate guarantees.
func (s *Server) logAssociateDecisions(gen uint64, eng *memes.Engine, posts []memes.Post, assocs []memes.Association) {
	if s.declog == nil {
		return
	}
	clusters := eng.Clusters()
	ai := 0
	for i := range posts {
		d := declog.Decision{
			Endpoint:   "associate",
			Generation: gen,
			Post:       posts[i],
			ClusterID:  -1,
			Distance:   -1,
		}
		if ai < len(assocs) && assocs[ai].PostIndex == i {
			a := assocs[ai]
			ai++
			d.Matched = true
			d.ClusterID = a.ClusterID
			d.Distance = a.Distance
			d.Entry = clusters[a.ClusterID].EntryName()
		}
		s.declog.Log(d)
	}
}

// logMatchDecision captures a single-hash lookup (/v1/match or
// /v1/match/image). The decision carries a synthetic post holding only the
// queried hash — there is no community or timestamp on a bare lookup, so
// replay skips these and regenerates tables from associate decisions.
func (s *Server) logMatchDecision(h memes.Hash, resp matchResponse) {
	if s.declog == nil {
		return
	}
	s.declog.Log(declog.Decision{
		Endpoint:   "match",
		Generation: resp.Generation,
		Post:       memes.Post{HasImage: true, Hash: uint64(h), TruthMeme: -1, TruthRoot: -1},
		Matched:    resp.Matched,
		ClusterID:  resp.ClusterID,
		Distance:   resp.Distance,
		Entry:      resp.Entry,
	})
}
