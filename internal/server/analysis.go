package server

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"

	"github.com/memes-pipeline/memes/internal/analysis"
)

// Analysis serving: the paper's Section 5 influence estimation and the full
// memereport document, computed live over the hot-swappable engine. Both
// endpoints need a dataset-bound engine (memeserve binds the corpus via
// memes.WithDataset); without one they answer 503/analysis_disabled so a
// pure serving replica degrades cleanly instead of panicking.
//
// The served numbers are pinned bitwise against the offline path: the
// influence fold is deterministic for any worker count (see
// analysis.fitGroupCtx), and float64 values survive JSON round-trips
// exactly, so a client can diff /v1/influence output against an offline
// run of the same corpus and expect equality, not closeness.

// handleInfluence answers POST /v1/influence: Hawkes cross-community
// influence matrices for one meme group. The fits parallelize across memes
// and stop promptly when the request is cancelled or times out.
func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	s.stats.influenceRequests.Add(1)
	var req influenceRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.maxBody)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, reasonBadRequest, "decoding request: "+err.Error())
		return
	}
	group := analysis.AllMemes
	if req.Group != "" {
		g, err := analysis.ParseMemeGroup(req.Group)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, reasonBadRequest, err.Error())
			return
		}
		group = g
	}
	cfg := analysis.DefaultInfluenceConfig()
	if req.Omega > 0 {
		cfg.Omega = req.Omega
	}
	if req.MaxIter > 0 {
		cfg.MaxIter = req.MaxIter
	}
	if req.MinEventsPerFit > 0 {
		cfg.MinEventsPerFit = req.MinEventsPerFit
	}

	eng, gen := s.hot.Pin()
	res, err := eng.TryResult()
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, reasonAnalysisDisabled, "influence needs a dataset-bound engine: "+err.Error())
		return
	}
	inf, err := analysis.EstimateInfluenceCtx(r.Context(), res, group, cfg)
	if err != nil {
		s.writeQueryError(w, "influence", err)
		return
	}
	s.writeJSON(w, http.StatusOK, influenceResponse{
		Group:         inf.Group.String(),
		Generation:    gen,
		Communities:   inf.Communities,
		Events:        inf.Events,
		Raw:           inf.Raw,
		Normalized:    inf.Normalized,
		TotalExternal: inf.TotalExternal,
		Total:         inf.Total,
	})
}

// handleReport answers GET /v1/report: the full memereport document over
// the live engine. The rendered document is cached per hot-swap generation
// (it is deterministic for a resident artifact), so only the first request
// after a reload pays the render; concurrent first requests may render
// twice, both producing identical documents.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.stats.reportRequests.Add(1)
	eng, gen := s.hot.Pin()
	res, err := eng.TryResult()
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, reasonAnalysisDisabled, "report needs a dataset-bound engine: "+err.Error())
		return
	}

	s.reportMu.Lock()
	if s.reportDoc != nil && s.reportGen == gen {
		doc := s.reportDoc
		s.reportMu.Unlock()
		s.writeJSON(w, http.StatusOK, doc)
		return
	}
	s.reportMu.Unlock()

	rep, err := analysis.NewReport(res)
	if err != nil {
		s.writeQueryError(w, "report", err)
		return
	}
	sections, err := rep.SectionsCtx(r.Context())
	if err != nil {
		s.writeQueryError(w, "report", err)
		return
	}
	doc := &reportResponse{
		Generation:      gen,
		SnapshotVersion: eng.SnapshotVersion(),
		Sections:        make([]reportSectionJSON, 0, len(sections)),
	}
	for _, sec := range sections {
		doc.Sections = append(doc.Sections, reportSectionJSON{Title: sec.Title, Body: sec.Body})
	}

	s.reportMu.Lock()
	s.reportGen, s.reportDoc = gen, doc
	s.reportMu.Unlock()
	s.writeJSON(w, http.StatusOK, doc)
}
