package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
)

// decodeError unmarshals an error response body.
func decodeError(t *testing.T, raw []byte) errorResponse {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("decoding error body %q: %v", raw, err)
	}
	return er
}

// TestAdmissionControlShedsDeterministically pins the admission middleware
// in isolation: with one in-flight slot held by a blocked request, the next
// request is shed with 503 + Retry-After and a machine-readable reason,
// while the observability endpoints stay reachable through the full stack.
func TestAdmissionControlShedsDeterministically(t *testing.T) {
	e := newTestEnvCfg(t, func(c *Config) { c.MaxInFlight = 1 })

	entered := make(chan struct{})
	block := make(chan struct{})
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-block
		w.WriteHeader(http.StatusOK)
	})
	h := e.srv.withAdmission(inner)

	first := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(first, httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	}()
	<-entered

	// The slot is held: the next request must be shed, not queued.
	second := httptest.NewRecorder()
	h.ServeHTTP(second, httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	if second.Code != http.StatusServiceUnavailable {
		t.Fatalf("shed status = %d, want 503", second.Code)
	}
	if got := second.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("shed Retry-After = %q, want \"1\"", got)
	}
	if er := decodeError(t, second.Body.Bytes()); er.Reason != reasonOverloaded {
		t.Fatalf("shed reason = %q, want %q", er.Reason, reasonOverloaded)
	}

	// An operator can still observe the saturated node: healthz and statsz
	// bypass admission, and statsz reports the live in-flight level.
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz on a saturated node: status %d", code)
	}
	if stats.Overload.InFlight != 1 || stats.Overload.MaxInFlight != 1 {
		t.Fatalf("statsz overload = %+v, want in_flight 1 of 1", stats.Overload)
	}
	if stats.Overload.Shed != 1 {
		t.Fatalf("statsz shed = %d, want 1", stats.Overload.Shed)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz on a saturated node: status %d", code)
	}

	close(block)
	<-done
	if first.Code != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", first.Code)
	}
}

// TestOverloadHammerOnlyCleanResponses is the acceptance hammer: sustained
// concurrent traffic against a tiny in-flight bound sees only successful
// responses (bitwise-identical to the baseline) or clean 503 sheds carrying
// Retry-After — never a dropped, hung, or corrupted request.
func TestOverloadHammerOnlyCleanResponses(t *testing.T) {
	e := newTestEnvCfg(t, func(c *Config) { c.MaxInFlight = 2 })
	h := e.eng.Clusters()[0].MedoidHash
	var baseline matchResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &baseline); code != http.StatusOK {
		t.Fatalf("baseline match: status %d: %s", code, raw)
	}

	const (
		workers = 16
		iters   = 30
	)
	var (
		ok   atomic.Int64
		shed atomic.Int64
	)
	var failed sync.Map
	fail := func(format string, args ...any) {
		failed.Store(fmt.Sprintf(format, args...), struct{}{})
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				req, err := http.NewRequest(http.MethodPost, e.ts.URL+"/v1/match", bytes.NewReader(matchBody(h)))
				if err != nil {
					fail("NewRequest: %v", err)
					return
				}
				resp, err := e.ts.Client().Do(req)
				if err != nil {
					fail("transport error (a dropped request): %v", err)
					return
				}
				var m matchResponse
				var er errorResponse
				switch resp.StatusCode {
				case http.StatusOK:
					if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
						fail("corrupt 200 body: %v", err)
					} else if m.Matched != baseline.Matched || m.ClusterID != baseline.ClusterID || m.Distance != baseline.Distance {
						fail("200 diverged from baseline: %+v != %+v", m, baseline)
					}
					ok.Add(1)
				case http.StatusServiceUnavailable:
					if got := resp.Header.Get("Retry-After"); got != "1" {
						fail("503 without Retry-After (got %q)", got)
					}
					if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
						fail("corrupt 503 body: %v", err)
					} else if er.Reason != reasonOverloaded {
						fail("503 reason = %q, want %q", er.Reason, reasonOverloaded)
					}
					shed.Add(1)
				default:
					fail("unclean status %d under overload", resp.StatusCode)
				}
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	failed.Range(func(k, _ any) bool {
		t.Error(k)
		return true
	})
	if total := ok.Load() + shed.Load(); total != workers*iters {
		t.Fatalf("accounted responses = %d, want %d: some request vanished", total, workers*iters)
	}

	// The shed counter must agree exactly with what clients observed.
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if stats.Overload.Shed != shed.Load() {
		t.Fatalf("statsz shed = %d, clients saw %d", stats.Overload.Shed, shed.Load())
	}
	t.Logf("hammer: %d served, %d shed", ok.Load(), shed.Load())
}

// TestDeadlineExpiryAnswers504 pins the deadline middleware: a request
// whose budget is already gone is answered 504 with reason "deadline" and
// counted, while the exempt observability endpoints keep answering.
func TestDeadlineExpiryAnswers504(t *testing.T) {
	e := newTestEnvCfg(t, func(c *Config) { c.RequestTimeout = time.Nanosecond })
	h := e.eng.Clusters()[0].MedoidHash
	code, raw := e.do(t, http.MethodPost, "/v1/match", matchBody(h), nil)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired match: status %d, want 504: %s", code, raw)
	}
	if er := decodeError(t, raw); er.Reason != reasonDeadline {
		t.Fatalf("expired match reason = %q, want %q", er.Reason, reasonDeadline)
	}
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/statsz"} {
		if code, raw := e.do(t, http.MethodGet, path, nil, nil); code != http.StatusOK {
			t.Errorf("%s under a 1ns request timeout: status %d: %s", path, code, raw)
		}
	}
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if stats.Overload.Timeouts < 1 {
		t.Fatalf("statsz timeouts = %d, want >= 1", stats.Overload.Timeouts)
	}
}

// TestRecoveryMiddlewareContainsPanics pins the outermost layer: a panicking
// handler becomes a 500 with reason "panic" and a counter tick, a panic
// after the response started is contained without corrupting the response,
// and http.ErrAbortHandler passes through untouched.
func TestRecoveryMiddlewareContainsPanics(t *testing.T) {
	e := newTestEnv(t)

	h := e.srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler: status %d, want 500", rec.Code)
	}
	if er := decodeError(t, rec.Body.Bytes()); er.Reason != reasonPanic {
		t.Fatalf("panicking handler reason = %q, want %q", er.Reason, reasonPanic)
	}
	if got := e.srv.stats.panics.Load(); got != 1 {
		t.Fatalf("panics counter = %d, want 1", got)
	}

	// A panic after the response started: nothing more can be promised to
	// the client, but the counter still ticks and the process survives.
	h = e.srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("mid-response")
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("mid-response panic rewrote the status to %d", rec.Code)
	}
	if got := e.srv.stats.panics.Load(); got != 2 {
		t.Fatalf("panics counter = %d, want 2", got)
	}

	// ErrAbortHandler is the sanctioned abort: it must not be swallowed.
	h = e.srv.withRecovery(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	func() {
		defer func() {
			if recover() != http.ErrAbortHandler {
				t.Error("ErrAbortHandler was swallowed by the recovery middleware")
			}
		}()
		h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodPost, "/v1/match", nil))
	}()
}

// TestBatcherContainsDispatchPanic drives a panic through the real dispatch
// path (a nil engine poisons AssociateAppend): every queued caller gets an
// error instead of a hang, and the dispatcher survives to serve — and again
// contain — the next lookup.
func TestBatcherContainsDispatchPanic(t *testing.T) {
	var stats counters
	b := newBatcher(memes.NewHotEngine(nil), 4, &stats)
	defer b.Close()

	for i := 0; i < 2; i++ {
		done := make(chan matchOut, 1)
		go func() { done <- b.Match(context.Background(), 0) }()
		select {
		case out := <-done:
			if out.err == nil {
				t.Fatalf("lookup %d against a poisoned engine succeeded", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("lookup %d hung: the dispatcher died with the panic", i)
		}
	}
	if got := stats.panics.Load(); got < 2 {
		t.Fatalf("panics counter = %d, want >= 2 (one per contained flush)", got)
	}
}

// TestBatcherDropsQueueExpiredLookups pins the flush-side expiry compaction:
// lookups whose caller deadline lapsed while queued are answered with their
// context error and spend no engine work, while live lookups in the same
// batch are served normally.
func TestBatcherDropsQueueExpiredLookups(t *testing.T) {
	eng, _ := batcherEngine(t)
	var stats counters
	b := &batcher{
		hot:      memes.NewHotEngine(eng),
		maxBatch: 4,
		stats:    &stats,
	}
	expiredCtx, cancel := context.WithCancel(context.Background())
	cancel()
	h := eng.Clusters()[0].MedoidHash
	expired := &matchReq{ctx: expiredCtx, hash: h, resp: make(chan matchOut, 1)}
	live := &matchReq{ctx: context.Background(), hash: h, resp: make(chan matchOut, 1)}
	b.batch = []*matchReq{expired, live}
	b.flush()

	if out := <-expired.resp; out.err != context.Canceled {
		t.Fatalf("expired lookup err = %v, want context.Canceled", out.err)
	}
	out := <-live.resp
	if out.err != nil {
		t.Fatalf("live lookup: %v", out.err)
	}
	wantM, wantOK, err := eng.Match(context.Background(), h)
	if err != nil {
		t.Fatalf("engine Match: %v", err)
	}
	if out.ok != wantOK || out.m != wantM {
		t.Fatalf("live lookup = (%+v,%v), want (%+v,%v)", out.m, out.ok, wantM, wantOK)
	}
	// Only the surviving lookup reached the engine.
	if stats.batches.Load() != 1 || stats.batchedRequests.Load() != 1 || stats.largestBatch.Load() != 1 {
		t.Fatalf("stats = batches %d, batched %d, largest %d; want 1/1/1",
			stats.batches.Load(), stats.batchedRequests.Load(), stats.largestBatch.Load())
	}

	// An all-expired batch dispatches nothing at all.
	expired2 := &matchReq{ctx: expiredCtx, hash: h, resp: make(chan matchOut, 1)}
	b.batch = []*matchReq{expired2}
	b.flush()
	if out := <-expired2.resp; out.err != context.Canceled {
		t.Fatalf("expired lookup err = %v, want context.Canceled", out.err)
	}
	if stats.batches.Load() != 1 {
		t.Fatalf("an all-expired batch still dispatched (batches = %d)", stats.batches.Load())
	}
}

// TestReloadFailureKeepsOldEngine pins the degraded-reload contract: a
// failing loader answers 500 with reason "reload_failed", the old engine
// keeps serving identical results on its old generation, counters stay
// coherent — and a later successful reload recovers.
func TestReloadFailureKeepsOldEngine(t *testing.T) {
	e := newTestEnv(t)
	h := e.eng.Clusters()[0].MedoidHash
	var baseline matchResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &baseline); code != http.StatusOK {
		t.Fatalf("baseline match: status %d: %s", code, raw)
	}

	e.failLoads.Store(true)
	code, raw := e.do(t, http.MethodPost, "/v1/admin/reload", nil, nil)
	if code != http.StatusInternalServerError {
		t.Fatalf("failed reload: status %d, want 500: %s", code, raw)
	}
	if er := decodeError(t, raw); er.Reason != reasonReloadFailed {
		t.Fatalf("failed reload reason = %q, want %q", er.Reason, reasonReloadFailed)
	}
	if g := e.srv.Generation(); g != 1 {
		t.Fatalf("generation after failed reload = %d, want 1 (old engine serving)", g)
	}
	var m matchResponse
	if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &m); code != http.StatusOK {
		t.Fatalf("match after failed reload: status %d", code)
	}
	if m != baseline {
		t.Fatalf("match diverged after failed reload: %+v != %+v", m, baseline)
	}
	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz: status %d", code)
	}
	if stats.Reloads != 0 || stats.Requests.Reload != 1 || stats.Requests.Errors < 1 {
		t.Fatalf("stats after failed reload: reloads %d, reload reqs %d, errors %d",
			stats.Reloads, stats.Requests.Reload, stats.Requests.Errors)
	}

	// The operator fixes the snapshot: the next reload succeeds and swaps.
	e.failLoads.Store(false)
	var st ReloadStatus
	if code, raw := e.do(t, http.MethodPost, "/v1/admin/reload", nil, &st); code != http.StatusOK {
		t.Fatalf("recovered reload: status %d: %s", code, raw)
	}
	if st.Generation != 2 {
		t.Fatalf("recovered reload generation = %d, want 2", st.Generation)
	}
	m = matchResponse{}
	if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(h), &m); code != http.StatusOK {
		t.Fatalf("match after recovered reload: status %d", code)
	}
	m.Generation = baseline.Generation
	if m != baseline {
		t.Fatalf("match diverged after recovered reload: %+v != %+v", m, baseline)
	}
}

// TestReadyzLifecycle pins readiness as distinct from liveness: ready while
// serving, not ready once Close ran — while healthz keeps reporting the
// process alive for its remaining drain window.
func TestReadyzLifecycle(t *testing.T) {
	e := newTestEnv(t)
	var ready readyResponse
	if code, raw := e.do(t, http.MethodGet, "/v1/readyz", nil, &ready); code != http.StatusOK {
		t.Fatalf("readyz: status %d: %s", code, raw)
	}
	if !ready.Ready || ready.Reason != "" || ready.Generation != 1 {
		t.Fatalf("readyz = %+v", ready)
	}

	e.srv.Close()
	code, raw := e.do(t, http.MethodGet, "/v1/readyz", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after Close: status %d, want 503", code)
	}
	if er := decodeError(t, raw); er.Reason != reasonClosed {
		t.Fatalf("readyz after Close reason = %q, want %q", er.Reason, reasonClosed)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz after Close: status %d (liveness must outlast readiness)", code)
	}
}
