//go:build faults

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/faults"
)

// TestServerDegradedJournalReadOnly drives the full degraded-mode story at
// the HTTP layer with an injected journal fault: writes are refused with a
// clean retryable 503, readiness flips so a fleet drains the node, the read
// path keeps serving — and the node recovers on its own once the journal
// heals, because the retry budget of the next append re-probes it.
func TestServerDegradedJournalReadOnly(t *testing.T) {
	e, novel := newIngestEnv(t, memes.IngestConfig{
		Threshold:       1 << 20,
		DeltaDir:        t.TempDir(),
		JournalAttempts: 3,
		JournalBackoff:  time.Millisecond,
	})
	resident := residentMedoid(t, e.eng)

	if code, raw := e.do(t, http.MethodGet, "/v1/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz before the fault: status %d: %s", code, raw)
	}

	// Three failures: exactly one append's whole retry budget. The fourth
	// hit (the next batch's first attempt) finds a healthy journal again.
	if err := faults.Arm("journal.append.write=error,times=3"); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	defer faults.Reset()

	resp, err := e.ts.Client().Post(e.ts.URL+"/v1/ingest", "application/json",
		bytes.NewReader(ingestBody(t, novelPosts(novel, 2))))
	if err != nil {
		t.Fatalf("ingest during fault: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ingest during fault: status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("degraded 503 Retry-After = %q, want \"1\"", got)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("decoding degraded 503: %v", err)
	}
	if er.Reason != reasonJournalDegraded {
		t.Fatalf("degraded 503 reason = %q, want %q", er.Reason, reasonJournalDegraded)
	}

	// Degraded is read-only, not down: readiness drains the node, liveness
	// and queries keep answering.
	code, raw := e.do(t, http.MethodGet, "/v1/readyz", nil, nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while degraded: status %d, want 503", code)
	}
	if er := decodeError(t, raw); er.Reason != reasonJournalDegraded {
		t.Fatalf("readyz while degraded reason = %q, want %q", er.Reason, reasonJournalDegraded)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz while degraded: status %d", code)
	}
	var m matchResponse
	if code, _ := e.do(t, http.MethodPost, "/v1/match", matchBody(resident), &m); code != http.StatusOK || !m.Matched {
		t.Fatalf("match while degraded: code %d matched %v — the read path must survive", code, m.Matched)
	}

	var stats StatsDoc
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz while degraded: status %d", code)
	}
	if !stats.Degraded || !stats.Ingest.Degraded {
		t.Fatalf("statsz while degraded: degraded=%v ingest.degraded=%v, want both true", stats.Degraded, stats.Ingest.Degraded)
	}
	if stats.Ingest.JournalRetries != 2 || stats.Ingest.JournalFailures != 1 {
		t.Fatalf("statsz journal retries/failures = %d/%d, want 2/1 (one append, full budget)",
			stats.Ingest.JournalRetries, stats.Ingest.JournalFailures)
	}
	if stats.Ingest.Seq != 0 {
		t.Fatalf("statsz seq = %d after a refused batch, want 0 (rollback)", stats.Ingest.Seq)
	}

	// The journal heals (the fault budget is spent): the next write batch
	// succeeds and clears degraded mode without a restart.
	var rec ingestResponse
	if code, raw := e.do(t, http.MethodPost, "/v1/ingest", ingestBody(t, novelPosts(novel, 2)), &rec); code != http.StatusOK {
		t.Fatalf("ingest after heal: status %d: %s", code, raw)
	}
	if rec.Accepted != 2 || rec.Seq != 2 {
		t.Fatalf("receipt after heal = %+v, want 2 accepted at seq 2", rec)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/readyz", nil, nil); code != http.StatusOK {
		t.Fatalf("readyz after heal: status %d, want 200", code)
	}
	if code, _ := e.do(t, http.MethodGet, "/v1/statsz", nil, &stats); code != http.StatusOK {
		t.Fatalf("statsz after heal: status %d", code)
	}
	if stats.Degraded || stats.Ingest.Degraded {
		t.Fatalf("statsz after heal: degraded=%v ingest.degraded=%v, want both false", stats.Degraded, stats.Ingest.Degraded)
	}
}
