package server

import (
	"bytes"
	"net/http"
	"time"

	"github.com/memes-pipeline/memes/internal/metrics"
)

// observability holds the per-endpoint latency histograms behind
// GET /v1/metrics. The histograms are created once at server construction
// and observed lock-free on the request path; everything else the endpoint
// emits renders directly from the same atomic counters /v1/statsz reads,
// which is what makes the two endpoints agree by construction.
type observability struct {
	endpoints []obsEndpoint
}

type obsEndpoint struct {
	path  string
	label string
	hist  *metrics.Histogram
}

func (o *observability) init() {
	for _, e := range []struct{ path, label string }{
		{"/v1/associate", "associate"},
		{"/v1/match", "match"},
		{"/v1/match/image", "match_image"},
		{"/v1/ingest", "ingest"},
		{"/v1/influence", "influence"},
		{"/v1/report", "report"},
		{"/v1/clusters", "clusters"},
		{"/v1/admin/reload", "reload"},
	} {
		o.endpoints = append(o.endpoints, obsEndpoint{path: e.path, label: e.label, hist: metrics.NewHistogram()})
	}
}

// histFor returns the histogram observing a path, or nil for paths not
// tracked (health/stats/metrics — scrape traffic would only add noise).
func (o *observability) histFor(path string) *metrics.Histogram {
	for i := range o.endpoints {
		if o.endpoints[i].path == path {
			return o.endpoints[i].hist
		}
	}
	return nil
}

// withObservation is the innermost middleware: it times each tracked
// request over the handler (inside the deadline and admission layers, so a
// shed request is not an observation) and feeds the endpoint's latency
// histogram.
func (s *Server) withObservation(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h := s.obs.histFor(r.URL.Path)
		if h == nil {
			next.ServeHTTP(w, r)
			return
		}
		start := time.Now()
		next.ServeHTTP(w, r)
		h.Observe(time.Since(start).Seconds())
	})
}

// handleMetrics answers GET /v1/metrics in the Prometheus text exposition
// format. Counters render from the exact atomics /v1/statsz renders, so
// the two views cannot drift; histograms come from the observation
// middleware. The endpoint is observability-exempt: it bypasses admission
// control and deadlines, because an operator must be able to scrape an
// overloaded node.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.stats.metricsRequests.Add(1)
	eng, gen := s.hot.Pin()

	var buf bytes.Buffer
	e := metrics.NewEncoder(&buf)

	e.Counter("memes_requests_total", "Requests received, by endpoint.")
	for _, rc := range []struct {
		endpoint string
		v        int64
	}{
		{"associate", s.stats.associateRequests.Load()},
		{"match", s.stats.matchRequests.Load()},
		{"match_image", s.stats.matchImageRequests.Load()},
		{"ingest", s.stats.ingestRequests.Load()},
		{"reload", s.stats.reloadRequests.Load()},
		{"influence", s.stats.influenceRequests.Load()},
		{"report", s.stats.reportRequests.Load()},
		{"metrics", s.stats.metricsRequests.Load()},
	} {
		e.Sample("memes_requests_total", []metrics.Label{{Name: "endpoint", Value: rc.endpoint}}, float64(rc.v))
	}

	e.Counter("memes_errors_total", "Requests answered with a non-2xx status.")
	e.Sample("memes_errors_total", nil, float64(s.stats.errors.Load()))

	e.Counter("memes_match_total", "Single-hash lookups, by outcome.")
	e.Sample("memes_match_total", []metrics.Label{{Name: "outcome", Value: "matched"}}, float64(s.stats.matched.Load()))
	e.Sample("memes_match_total", []metrics.Label{{Name: "outcome", Value: "missed"}}, float64(s.stats.missed.Load()))

	e.Counter("memes_associate_posts_total", "Posts received by /v1/associate.")
	e.Sample("memes_associate_posts_total", nil, float64(s.stats.associatedPosts.Load()))
	e.Counter("memes_associations_total", "Associations returned by /v1/associate.")
	e.Sample("memes_associations_total", nil, float64(s.stats.associations.Load()))

	e.Counter("memes_batches_total", "Micro-batcher Associate fan-outs.")
	e.Sample("memes_batches_total", nil, float64(s.stats.batches.Load()))
	e.Counter("memes_batched_requests_total", "Match lookups carried by micro-batcher fan-outs.")
	e.Sample("memes_batched_requests_total", nil, float64(s.stats.batchedRequests.Load()))
	e.Gauge("memes_largest_batch", "High-water mark of coalesced lookups in one fan-out.")
	e.Sample("memes_largest_batch", nil, float64(s.stats.largestBatch.Load()))

	e.Counter("memes_overload_shed_total", "Requests refused by admission control.")
	e.Sample("memes_overload_shed_total", nil, float64(s.stats.shed.Load()))
	e.Counter("memes_request_timeouts_total", "Requests answered 504 after their deadline.")
	e.Sample("memes_request_timeouts_total", nil, float64(s.stats.timeouts.Load()))
	e.Counter("memes_handler_panics_total", "Handler panics contained by the recovery middleware.")
	e.Sample("memes_handler_panics_total", nil, float64(s.stats.panics.Load()))
	e.Gauge("memes_inflight_requests", "Requests currently holding an admission slot.")
	e.Sample("memes_inflight_requests", nil, float64(len(s.sem)))
	e.Gauge("memes_max_inflight_requests", "Admission-control bound; 0 when disabled.")
	e.Sample("memes_max_inflight_requests", nil, float64(cap(s.sem)))

	e.Counter("memes_reloads_total", "Successful hot swaps.")
	e.Sample("memes_reloads_total", nil, float64(s.stats.reloads.Load()))
	e.Gauge("memes_engine_generation", "Hot-swap generation currently serving.")
	e.Sample("memes_engine_generation", nil, float64(gen))
	e.Gauge("memes_snapshot_version", "MEMESNAP format version of the resident artifact; 0 for in-memory builds.")
	e.Sample("memes_snapshot_version", nil, float64(eng.SnapshotVersion()))
	e.Gauge("memes_clusters", "Clusters in the resident artifact.")
	e.Sample("memes_clusters", nil, float64(len(eng.Clusters())))
	e.Gauge("memes_annotated_clusters", "Annotated clusters the Step 6 index serves.")
	e.Sample("memes_annotated_clusters", nil, float64(annotatedCount(eng)))
	e.Gauge("memes_uptime_seconds", "Seconds since the server started.")
	e.Sample("memes_uptime_seconds", nil, time.Since(s.started).Seconds())

	degraded := 0.0
	if s.ingestor != nil {
		st := s.ingestor.Stats()
		if st.Degraded {
			degraded = 1
		}
		e.Counter("memes_ingest_posts_total", "Posts accepted by streaming ingest.")
		e.Sample("memes_ingest_posts_total", nil, float64(st.Ingested))
		e.Counter("memes_ingest_assigned_total", "Ingested posts assigned to a resident cluster.")
		e.Sample("memes_ingest_assigned_total", nil, float64(st.Assigned))
		e.Counter("memes_ingest_rejected_total", "Ingest posts rejected.")
		e.Sample("memes_ingest_rejected_total", nil, float64(st.Rejected))
		e.Gauge("memes_ingest_pending", "Posts awaiting the next threshold-triggered re-cluster.")
		e.Sample("memes_ingest_pending", nil, float64(st.Pending))
		e.Counter("memes_ingest_reclusters_total", "Incremental re-clusters run.")
		e.Sample("memes_ingest_reclusters_total", nil, float64(st.Reclusters))
		e.Counter("memes_ingest_recluster_failures_total", "Incremental re-clusters that failed.")
		e.Sample("memes_ingest_recluster_failures_total", nil, float64(st.ReclusterFailures))
		e.Counter("memes_ingest_compactions_total", "Delta-journal compactions.")
		e.Sample("memes_ingest_compactions_total", nil, float64(st.Compactions))
		e.Counter("memes_ingest_journal_failures_total", "Journal writes that exhausted their retries.")
		e.Sample("memes_ingest_journal_failures_total", nil, float64(st.JournalFailures))
	}
	e.Gauge("memes_degraded", "1 when the ingest journal is degraded (read-only serving).")
	e.Sample("memes_degraded", nil, degraded)

	if s.declog != nil {
		st := s.declog.Stats()
		e.Counter("memes_decision_log_logged_total", "Decisions accepted into the log buffer.")
		e.Sample("memes_decision_log_logged_total", nil, float64(st.Logged))
		e.Counter("memes_decision_log_dropped_total", "Decisions dropped because the buffer was full.")
		e.Sample("memes_decision_log_dropped_total", nil, float64(st.Dropped))
		e.Counter("memes_decision_log_batches_total", "Decision batches uploaded to the sink.")
		e.Sample("memes_decision_log_batches_total", nil, float64(st.Batches))
		e.Counter("memes_decision_log_flushed_total", "Decisions successfully flushed to the sink.")
		e.Sample("memes_decision_log_flushed_total", nil, float64(st.Flushed))
		e.Counter("memes_decision_log_flush_failures_total", "Failed sink uploads.")
		e.Sample("memes_decision_log_flush_failures_total", nil, float64(st.FlushFailures))
		e.Gauge("memes_decision_log_buffered", "Decisions currently awaiting flush.")
		e.Sample("memes_decision_log_buffered", nil, float64(st.Buffered))
	}

	e.HistogramType("memes_request_duration_seconds", "Request latency over the handler, by endpoint.")
	for i := range s.obs.endpoints {
		ep := &s.obs.endpoints[i]
		ep.hist.Write(e, "memes_request_duration_seconds", []metrics.Label{{Name: "endpoint", Value: ep.label}})
	}

	if err := e.Err(); err != nil {
		s.writeError(w, http.StatusInternalServerError, reasonInternal, "rendering metrics: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes())
}
