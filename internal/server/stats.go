package server

import (
	"sync/atomic"
)

// counters is the server's always-on operational accounting, maintained with
// atomics so the hot serve path never takes a lock for bookkeeping. The
// /v1/statsz endpoint renders it as one machine-readable document following
// the same conventions as the repo's StatsJSON / BenchDoc contracts (stable
// snake_case keys, arrays never null).
type counters struct {
	associateRequests  atomic.Int64
	matchRequests      atomic.Int64
	matchImageRequests atomic.Int64
	ingestRequests     atomic.Int64
	reloadRequests     atomic.Int64
	influenceRequests  atomic.Int64
	reportRequests     atomic.Int64
	metricsRequests    atomic.Int64

	errors atomic.Int64 // requests answered with a non-2xx status

	matched atomic.Int64 // single-hash lookups that found a cluster
	missed  atomic.Int64 // single-hash lookups outside the threshold

	associatedPosts atomic.Int64 // posts received by /v1/associate
	associations    atomic.Int64 // associations returned by /v1/associate

	batches         atomic.Int64 // Associate fan-outs the micro-batcher ran
	batchedRequests atomic.Int64 // /v1/match lookups those fan-outs carried
	largestBatch    atomic.Int64 // high-water mark of coalesced lookups

	reloads atomic.Int64 // successful hot swaps (admin endpoint or SIGHUP)

	shed     atomic.Int64 // requests refused by admission control (503)
	timeouts atomic.Int64 // requests answered 504 after their deadline
	panics   atomic.Int64 // handler/dispatcher panics contained by recovery
}

// observeBatch records one micro-batcher fan-out of n coalesced lookups.
func (c *counters) observeBatch(n int) {
	c.batches.Add(1)
	c.batchedRequests.Add(int64(n))
	for {
		cur := c.largestBatch.Load()
		if int64(n) <= cur || c.largestBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// The /v1/statsz document types (StatsDoc and its sub-structs) live in
// wire.go with the rest of the API's wire shapes.
