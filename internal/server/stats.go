package server

import (
	"sync/atomic"

	"github.com/memes-pipeline/memes/internal/cli"
)

// counters is the server's always-on operational accounting, maintained with
// atomics so the hot serve path never takes a lock for bookkeeping. The
// /v1/statsz endpoint renders it as one machine-readable document following
// the same conventions as the repo's StatsJSON / BenchDoc contracts (stable
// snake_case keys, arrays never null).
type counters struct {
	associateRequests  atomic.Int64
	matchRequests      atomic.Int64
	matchImageRequests atomic.Int64
	ingestRequests     atomic.Int64
	reloadRequests     atomic.Int64

	errors atomic.Int64 // requests answered with a non-2xx status

	matched atomic.Int64 // single-hash lookups that found a cluster
	missed  atomic.Int64 // single-hash lookups outside the threshold

	associatedPosts atomic.Int64 // posts received by /v1/associate
	associations    atomic.Int64 // associations returned by /v1/associate

	batches         atomic.Int64 // Associate fan-outs the micro-batcher ran
	batchedRequests atomic.Int64 // /v1/match lookups those fan-outs carried
	largestBatch    atomic.Int64 // high-water mark of coalesced lookups

	reloads atomic.Int64 // successful hot swaps (admin endpoint or SIGHUP)

	shed     atomic.Int64 // requests refused by admission control (503)
	timeouts atomic.Int64 // requests answered 504 after their deadline
	panics   atomic.Int64 // handler/dispatcher panics contained by recovery
}

// observeBatch records one micro-batcher fan-out of n coalesced lookups.
func (c *counters) observeBatch(n int) {
	c.batches.Add(1)
	c.batchedRequests.Add(int64(n))
	for {
		cur := c.largestBatch.Load()
		if int64(n) <= cur || c.largestBatch.CompareAndSwap(cur, int64(n)) {
			return
		}
	}
}

// StatsDoc is the /v1/statsz response: request counters, micro-batcher
// shape, hot-swap state, and the resident engine's build-phase RunStats.
type StatsDoc struct {
	UptimeMS          float64       `json:"uptime_ms"`
	Generation        uint64        `json:"generation"`
	LoadedAt          string        `json:"loaded_at"`
	Clusters          int           `json:"clusters"`
	AnnotatedClusters int           `json:"annotated_clusters"`
	Reloads           int64         `json:"reloads"`
	Degraded          bool          `json:"degraded"`
	Requests          RequestStats  `json:"requests"`
	Match             MatchStats    `json:"match"`
	Associate         AssocStats    `json:"associate"`
	Batcher           BatcherStats  `json:"batcher"`
	Overload          OverloadStats `json:"overload"`
	Ingest            IngestStats   `json:"ingest"`
	BuildStats        cli.StatsJSON `json:"build_stats"`
}

// OverloadStats surfaces the server's self-protection counters: admission
// sheds, deadline expiries, contained panics, and the live in-flight level
// against its bound.
type OverloadStats struct {
	Shed        int64 `json:"shed"`
	Timeouts    int64 `json:"timeouts"`
	Panics      int64 `json:"panics"`
	InFlight    int   `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
}

// RequestStats counts requests per endpoint plus total error responses.
type RequestStats struct {
	Associate  int64 `json:"associate"`
	Match      int64 `json:"match"`
	MatchImage int64 `json:"match_image"`
	Ingest     int64 `json:"ingest"`
	Reload     int64 `json:"reload"`
	Errors     int64 `json:"errors"`
}

// MatchStats counts single-hash lookup outcomes across /v1/match and
// /v1/match/image.
type MatchStats struct {
	Matched int64 `json:"matched"`
	Missed  int64 `json:"missed"`
}

// AssocStats counts /v1/associate volume.
type AssocStats struct {
	Posts        int64 `json:"posts"`
	Associations int64 `json:"associations"`
}

// BatcherStats describes the micro-batcher's coalescing behaviour: how many
// Associate fan-outs served how many /v1/match lookups.
type BatcherStats struct {
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	LargestBatch    int64 `json:"largest_batch"`
	MaxBatch        int   `json:"max_batch"`
}

// IngestStats renders the streaming-ingest subsystem's counters. Enabled is
// false (and everything else zero) when the server runs without an Ingestor.
type IngestStats struct {
	Enabled           bool   `json:"enabled"`
	Ingested          int64  `json:"ingested"`
	Assigned          int64  `json:"assigned"`
	Rejected          int64  `json:"rejected"`
	Pending           int    `json:"pending"`
	Pool              int    `json:"pool"`
	Reclusters        int64  `json:"reclusters"`
	ReclusterFailures int64  `json:"recluster_failures"`
	Compactions       int64  `json:"compactions"`
	DeltaSegments     int    `json:"delta_segments"`
	Seq               uint64 `json:"seq"`
	JournalRetries    int64  `json:"journal_retries"`
	JournalFailures   int64  `json:"journal_failures"`
	TornTails         int64  `json:"torn_tails"`
	Degraded          bool   `json:"degraded"`
}
