package server

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/memes-pipeline/memes"
)

// batcherEngine builds one engine plus its corpus for the batcher tests.
func batcherEngine(t *testing.T) (*memes.Engine, *memes.Dataset) {
	t.Helper()
	ds, err := memes.GenerateDataset(memes.SmallDatasetConfig())
	if err != nil {
		t.Fatalf("GenerateDataset: %v", err)
	}
	site, err := ds.Site(true)
	if err != nil {
		t.Fatalf("Site: %v", err)
	}
	eng, err := memes.NewEngine(t.Context(), ds, site)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	return eng, ds
}

// TestBatcherCoalescesQueuedLookups pins the coalescing contract
// deterministically: lookups queued before the dispatcher starts are
// answered by a single Associate fan-out, and each answer is identical to a
// direct Engine.Match.
func TestBatcherCoalescesQueuedLookups(t *testing.T) {
	eng, ds := batcherEngine(t)
	var hashes []memes.Hash
	for _, c := range eng.Clusters() {
		hashes = append(hashes, c.MedoidHash)
	}
	for i := 0; i < len(ds.Posts) && len(hashes) < 64; i++ {
		if ds.Posts[i].HasImage {
			hashes = append(hashes, ds.Posts[i].PHash())
		}
	}

	var stats counters
	b := &batcher{
		hot:      memes.NewHotEngine(eng),
		reqs:     make(chan *matchReq, len(hashes)),
		maxBatch: len(hashes),
		stats:    &stats,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	// Queue every lookup before the dispatcher runs: the first receive plus
	// the non-blocking drain must coalesce all of them into one flush.
	reqs := make([]*matchReq, len(hashes))
	for i, h := range hashes {
		reqs[i] = &matchReq{ctx: context.Background(), hash: h, resp: make(chan matchOut, 1)}
		b.reqs <- reqs[i]
	}
	go b.run()
	defer b.Close()

	for i, req := range reqs {
		out := <-req.resp
		if out.err != nil {
			t.Fatalf("lookup %d: %v", i, out.err)
		}
		wantM, wantOK, err := eng.Match(context.Background(), hashes[i])
		if err != nil {
			t.Fatalf("engine Match: %v", err)
		}
		if out.ok != wantOK || (wantOK && out.m != wantM) {
			t.Fatalf("lookup %016x: batched (%+v,%v) != direct (%+v,%v)",
				uint64(hashes[i]), out.m, out.ok, wantM, wantOK)
		}
	}
	if got := stats.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1 (all queued lookups coalesced)", got)
	}
	if got := stats.batchedRequests.Load(); got != int64(len(hashes)) {
		t.Fatalf("batched_requests = %d, want %d", got, len(hashes))
	}
	if got := stats.largestBatch.Load(); got != int64(len(hashes)) {
		t.Fatalf("largest_batch = %d, want %d", got, len(hashes))
	}
}

// TestBatcherConcurrentCallers hammers Match from many goroutines through
// the public construction path and cross-checks every answer.
func TestBatcherConcurrentCallers(t *testing.T) {
	eng, ds := batcherEngine(t)
	var stats counters
	b := newBatcher(memes.NewHotEngine(eng), 32, &stats)
	defer b.Close()

	var hashes []memes.Hash
	for i := 0; i < len(ds.Posts) && len(hashes) < 200; i++ {
		if ds.Posts[i].HasImage {
			hashes = append(hashes, ds.Posts[i].PHash())
		}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := w; i < len(hashes); i += 8 {
				out := b.Match(ctx, hashes[i])
				if out.err != nil {
					t.Errorf("Match %016x: %v", uint64(hashes[i]), out.err)
					return
				}
				wantM, wantOK, err := eng.Match(ctx, hashes[i])
				if err != nil {
					t.Errorf("engine Match: %v", err)
					return
				}
				if out.ok != wantOK || (wantOK && out.m != wantM) {
					t.Errorf("Match %016x: batched (%+v,%v) != direct (%+v,%v)",
						uint64(hashes[i]), out.m, out.ok, wantM, wantOK)
					return
				}
			}
		}()
	}
	wg.Wait()
	if stats.batchedRequests.Load() != int64(len(hashes)) {
		t.Fatalf("batched_requests = %d, want %d", stats.batchedRequests.Load(), len(hashes))
	}
}

// TestBatcherClosedAndCancelled covers the shutdown and caller-gave-up
// paths.
func TestBatcherClosedAndCancelled(t *testing.T) {
	eng, _ := batcherEngine(t)
	var stats counters
	b := newBatcher(memes.NewHotEngine(eng), 4, &stats)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if out := b.Match(cancelled, 0); out.err == nil {
		t.Fatal("Match with cancelled context succeeded")
	}

	b.Close()
	if out := b.Match(context.Background(), 0); out.err != errBatcherClosed {
		t.Fatalf("Match after Close: err = %v, want errBatcherClosed", out.err)
	}
}

// TestBatcherCloseUnblocksQueuedLookup pins the shutdown-race fix: a lookup
// that made it into the queue but whose batch the dispatcher never flushed
// must be answered with errBatcherClosed when the dispatcher exits — not
// hang forever waiting for a response that cannot come.
func TestBatcherCloseUnblocksQueuedLookup(t *testing.T) {
	eng, _ := batcherEngine(t)
	var stats counters
	// Construct without starting the dispatcher, so the enqueued lookup is
	// deterministically never flushed.
	b := &batcher{
		hot:      memes.NewHotEngine(eng),
		reqs:     make(chan *matchReq, 4),
		maxBatch: 4,
		stats:    &stats,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	res := make(chan matchOut, 1)
	go func() { res <- b.Match(context.Background(), 0) }()
	for len(b.reqs) == 0 {
		runtime.Gosched() // wait until the lookup is in the queue
	}
	// Simulate the dispatcher exiting with the lookup still queued.
	close(b.stop)
	close(b.done)
	select {
	case out := <-res:
		if out.err != errBatcherClosed {
			t.Fatalf("queued lookup err = %v, want errBatcherClosed", out.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued lookup hung after batcher shutdown")
	}
}
