package server

import (
	"encoding/json"
	"time"

	"github.com/memes-pipeline/memes"
	"github.com/memes-pipeline/memes/internal/cli"
)

// This file is the de-facto wire specification of the serving API: every
// request and response DTO of every endpoint, in one place, with explicit
// snake_case JSON tags (enforced by the jsonwire memelint analyzer). The
// handlers in server.go and analysis.go only marshal these shapes; if a
// field is not here, it is not on the wire.
//
// Conventions:
//   - every response that reads engine state carries "generation", the
//     hot-swap generation that served it;
//   - arrays are never null — encoders emit [] for empty;
//   - errors are always errorResponse, written via writeError (the jsonwire
//     analyzer flags hand-rolled error writes that bypass it).

// Machine-readable error reasons, carried in every error response so
// clients and load balancers can react without parsing prose.
const (
	reasonBadRequest       = "bad_request"
	reasonInternal         = "internal"
	reasonOverloaded       = "overloaded"
	reasonDeadline         = "deadline"
	reasonCanceled         = "canceled"
	reasonClosed           = "closed"
	reasonPanic            = "panic"
	reasonPoolFull         = "pool_full"
	reasonIngestDisabled   = "ingest_disabled"
	reasonJournalDegraded  = "journal_degraded"
	reasonReloadFailed     = "reload_failed"
	reasonAnalysisDisabled = "analysis_disabled"
)

// errorResponse is the single error envelope of the API: every non-2xx
// response body has exactly this shape. Error is prose for humans; Reason
// is one of the reason* slugs above, stable for machines.
type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

// associateRequest is the POST /v1/associate body: an arbitrary batch of
// posts to run Step 6 association over.
type associateRequest struct {
	Posts []memes.Post `json:"posts"`
}

// associationJSON is one post-to-cluster association in an
// associateResponse.
type associationJSON struct {
	PostIndex int    `json:"post_index"`
	ClusterID int    `json:"cluster_id"`
	Distance  int    `json:"distance"`
	Entry     string `json:"entry,omitempty"`
}

// associateResponse answers POST /v1/associate.
type associateResponse struct {
	Posts        int               `json:"posts"`
	Matched      int               `json:"matched"`
	Generation   uint64            `json:"generation"`
	Associations []associationJSON `json:"associations"`
}

// matchRequest is the POST /v1/match body. Hash is kept raw because the
// wire accepts two forms: a hex string (canonical) or a bare decimal
// integer; see parseHash.
type matchRequest struct {
	Hash json.RawMessage `json:"hash"`
}

// matchResponse answers POST /v1/match and POST /v1/match/image. ClusterID
// and Distance are -1 when Matched is false.
type matchResponse struct {
	Matched    bool   `json:"matched"`
	ClusterID  int    `json:"cluster_id"`
	Distance   int    `json:"distance"`
	Entry      string `json:"entry,omitempty"`
	Community  string `json:"community,omitempty"`
	Hash       string `json:"hash"`
	Generation uint64 `json:"generation"`
}

// ingestRequest is the POST /v1/ingest body: new posts for the streaming
// ingest path.
type ingestRequest struct {
	Posts []memes.Post `json:"posts"`
}

// ingestResponse answers POST /v1/ingest with the ingest receipt: how far
// each post got (assigned = servable now, pending = awaiting the next
// threshold-triggered re-cluster).
type ingestResponse struct {
	Accepted   int    `json:"accepted"`
	Assigned   int    `json:"assigned"`
	Pending    int    `json:"pending"`
	Triggered  bool   `json:"triggered"`
	Seq        uint64 `json:"seq"`
	Generation uint64 `json:"generation"`
}

// influenceRequest is the POST /v1/influence body. Group selects the meme
// subset ("all", "racist", "non-racist", "politics", "non-politics");
// empty means "all". The remaining fields override the corresponding
// InfluenceConfig knobs when positive and keep the analysis defaults when
// omitted, so an empty body reproduces the offline defaults exactly.
type influenceRequest struct {
	Group           string  `json:"group"`
	Omega           float64 `json:"omega,omitempty"`
	MaxIter         int     `json:"max_iter,omitempty"`
	MinEventsPerFit int     `json:"min_events_per_fit,omitempty"`
}

// influenceResponse answers POST /v1/influence with the paper's Section 5
// matrices for the requested group, computed over the live engine's
// full-corpus result. For identical corpus and configuration the numbers
// are bitwise-identical to the offline analysis path (float64 survives
// JSON round-trips exactly), for any worker count.
type influenceResponse struct {
	Group      string `json:"group"`
	Generation uint64 `json:"generation"`
	// Communities names the matrix axes in order.
	Communities []string `json:"communities"`
	// Events is Table 7 restricted to the group.
	Events []int `json:"events"`
	// Raw is Figure 11: Raw[src][dst], columns summing to 1.
	Raw [][]float64 `json:"raw"`
	// Normalized is Figure 12: influence per source event.
	Normalized [][]float64 `json:"normalized"`
	// TotalExternal is the normalized influence exerted on other
	// communities ("Total Ext"); Total adds the self column.
	TotalExternal []float64 `json:"total_external"`
	Total         []float64 `json:"total"`
}

// reportSectionJSON is one rendered table or figure in a reportResponse.
type reportSectionJSON struct {
	Title string `json:"title"`
	Body  string `json:"body"`
}

// reportResponse answers GET /v1/report: the full memereport document
// (every table and figure of the paper) rendered over the live engine,
// plus the provenance a consumer needs to compare documents across
// reloads. Sections match cmd/memereport's JSON output byte for byte.
type reportResponse struct {
	Generation      uint64              `json:"generation"`
	SnapshotVersion uint32              `json:"snapshot_version"`
	Sections        []reportSectionJSON `json:"sections"`
}

// healthResponse answers GET /v1/healthz (liveness + resident artifact
// shape).
type healthResponse struct {
	Status            string `json:"status"`
	Generation        uint64 `json:"generation"`
	Clusters          int    `json:"clusters"`
	AnnotatedClusters int    `json:"annotated_clusters"`
}

// readyResponse answers GET /v1/readyz. Ready false carries the reason
// slug (closed, journal_degraded).
type readyResponse struct {
	Ready      bool   `json:"ready"`
	Reason     string `json:"reason,omitempty"`
	Generation uint64 `json:"generation"`
}

// clusterJSON is one annotated cluster in a clustersResponse.
type clusterJSON struct {
	ID             int    `json:"id"`
	Community      string `json:"community"`
	Entry          string `json:"entry,omitempty"`
	Images         int    `json:"images"`
	DistinctHashes int    `json:"distinct_hashes"`
	MedoidHash     string `json:"medoid_hash"`
	Annotated      bool   `json:"annotated"`
	Racist         bool   `json:"racist,omitempty"`
	Political      bool   `json:"political,omitempty"`
}

// clustersResponse answers GET /v1/clusters: the resident annotated-cluster
// artifact.
type clustersResponse struct {
	Generation uint64        `json:"generation"`
	Clusters   []clusterJSON `json:"clusters"`
}

// ReloadStatus describes one completed hot swap; it answers
// POST /v1/admin/reload and is returned by Server.Reload.
type ReloadStatus struct {
	Generation uint64        `json:"generation"`
	Clusters   int           `json:"clusters"`
	Duration   time.Duration `json:"-"`
	LoadMS     float64       `json:"load_ms"`
}

// StatsDoc is the GET /v1/statsz response: request counters, micro-batcher
// shape, hot-swap state, decision-log accounting, and the resident
// engine's build-phase RunStats.
type StatsDoc struct {
	UptimeMS          float64       `json:"uptime_ms"`
	Generation        uint64        `json:"generation"`
	LoadedAt          string        `json:"loaded_at"`
	Clusters          int           `json:"clusters"`
	AnnotatedClusters int           `json:"annotated_clusters"`
	Reloads           int64         `json:"reloads"`
	Degraded          bool          `json:"degraded"`
	Requests          RequestStats  `json:"requests"`
	Match             MatchStats    `json:"match"`
	Associate         AssocStats    `json:"associate"`
	Batcher           BatcherStats  `json:"batcher"`
	Overload          OverloadStats `json:"overload"`
	Ingest            IngestStats   `json:"ingest"`
	DecisionLog       DecLogStats   `json:"decision_log"`
	BuildStats        cli.StatsJSON `json:"build_stats"`
}

// OverloadStats surfaces the server's self-protection counters: admission
// sheds, deadline expiries, contained panics, and the live in-flight level
// against its bound.
type OverloadStats struct {
	Shed        int64 `json:"shed"`
	Timeouts    int64 `json:"timeouts"`
	Panics      int64 `json:"panics"`
	InFlight    int   `json:"in_flight"`
	MaxInFlight int   `json:"max_in_flight"`
}

// RequestStats counts requests per endpoint plus total error responses.
type RequestStats struct {
	Associate  int64 `json:"associate"`
	Match      int64 `json:"match"`
	MatchImage int64 `json:"match_image"`
	Ingest     int64 `json:"ingest"`
	Reload     int64 `json:"reload"`
	Influence  int64 `json:"influence"`
	Report     int64 `json:"report"`
	Metrics    int64 `json:"metrics"`
	Errors     int64 `json:"errors"`
}

// MatchStats counts single-hash lookup outcomes across /v1/match and
// /v1/match/image.
type MatchStats struct {
	Matched int64 `json:"matched"`
	Missed  int64 `json:"missed"`
}

// AssocStats counts /v1/associate volume.
type AssocStats struct {
	Posts        int64 `json:"posts"`
	Associations int64 `json:"associations"`
}

// BatcherStats describes the micro-batcher's coalescing behaviour: how many
// Associate fan-outs served how many /v1/match lookups.
type BatcherStats struct {
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	LargestBatch    int64 `json:"largest_batch"`
	MaxBatch        int   `json:"max_batch"`
}

// IngestStats renders the streaming-ingest subsystem's counters. Enabled is
// false (and everything else zero) when the server runs without an Ingestor.
type IngestStats struct {
	Enabled           bool   `json:"enabled"`
	Ingested          int64  `json:"ingested"`
	Assigned          int64  `json:"assigned"`
	Rejected          int64  `json:"rejected"`
	Pending           int    `json:"pending"`
	Pool              int    `json:"pool"`
	Reclusters        int64  `json:"reclusters"`
	ReclusterFailures int64  `json:"recluster_failures"`
	Compactions       int64  `json:"compactions"`
	DeltaSegments     int    `json:"delta_segments"`
	Seq               uint64 `json:"seq"`
	JournalRetries    int64  `json:"journal_retries"`
	JournalFailures   int64  `json:"journal_failures"`
	TornTails         int64  `json:"torn_tails"`
	Degraded          bool   `json:"degraded"`
}

// DecLogStats renders the decision-log stream's accounting. Enabled is
// false (and everything else zero) when the server runs without a decision
// logger.
type DecLogStats struct {
	Enabled       bool   `json:"enabled"`
	Logged        uint64 `json:"logged"`
	Dropped       uint64 `json:"dropped"`
	Batches       uint64 `json:"batches"`
	Flushed       uint64 `json:"flushed"`
	FlushFailures uint64 `json:"flush_failures"`
	Buffered      int    `json:"buffered"`
}
